//! Figs. 21–22 as criterion benches: batch insert / update time of the five
//! indexes.

use bench::{ExperimentEnv, IndexKind};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dits::DatasetNode;
use std::hint::black_box;

fn bench_index_update(c: &mut Criterion) {
    let env = ExperimentEnv::small();
    let theta = 12;
    let base = env.dataset_nodes(3, theta);
    let pool = env.dataset_nodes(2, theta);
    let beta = 100usize;

    let inserts: Vec<DatasetNode> = pool
        .iter()
        .cycle()
        .take(beta)
        .enumerate()
        .map(|(i, n)| {
            let mut node = n.clone();
            node.id = 1_000_000 + i as u32;
            node
        })
        .collect();
    let updates: Vec<DatasetNode> = base
        .iter()
        .cycle()
        .take(beta)
        .zip(pool.iter().cycle())
        .map(|(original, donor)| {
            let mut node = donor.clone();
            node.id = original.id;
            node
        })
        .collect();

    let mut group = c.benchmark_group("index_update");
    group.sample_size(10);
    for kind in IndexKind::all() {
        group.bench_with_input(
            BenchmarkId::new("insert_100", kind.name()),
            &kind,
            |b, kind| {
                b.iter_batched(
                    || kind.build(base.clone(), 10),
                    |mut index| {
                        for node in &inserts {
                            black_box(index.insert(node.clone()));
                        }
                        index
                    },
                    BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("update_100", kind.name()),
            &kind,
            |b, kind| {
                b.iter_batched(
                    || kind.build(base.clone(), 10),
                    |mut index| {
                        for node in &updates {
                            black_box(index.update(node.clone()));
                        }
                        index
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_index_update);
criterion_main!(benches);
