//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section VII) on the synthetic five-source environment.
//!
//! Usage:
//!
//! ```text
//! experiments [EXPERIMENT] [--scale DIVISOR] [--quick]
//!
//! EXPERIMENT: all | table1 | table2 | fig7 | fig8 | fig9 | fig10 | fig11 |
//!             fig12 | fig13 | fig14 | fig15 | fig16 | fig17 | fig18 |
//!             fig19 | fig20 | fig21 | fig22
//! --scale N   generate 1/N of the paper's dataset counts (default 20)
//! --quick     use a reduced parameter grid and a smaller scale (divisor 100)
//! ```
//!
//! Every figure prints a tab-separated table whose rows mirror the series of
//! the corresponding plot; EXPERIMENTS.md records the qualitative shapes the
//! paper reports next to a captured run of this binary.

use std::time::{Duration, Instant};

use baselines::{sg_coverage_search, sg_dits_coverage_search};
use bench::{ExperimentEnv, IndexKind};
use datagen::ParameterGrid;
use dits::{coverage_search, CoverageConfig, DatasetNode, DitsLocal, DitsLocalConfig};
use multisource::{CommConfig, DistributionStrategy, FrameworkConfig, SearchRequest};
use spatial::SourceStats;

const USAGE: &str = "\
Usage: experiments [EXPERIMENT] [--scale DIVISOR] [--quick]

EXPERIMENT: all | table1 | table2 | fig7 | fig8 | fig9 | fig10 | fig11 |
            fig12 | fig13 | fig14 | fig15 | fig16 | fig17 | fig18 |
            fig19 | fig20 | fig21 | fig22
--scale N   generate 1/N of the paper's dataset counts (default 20)
--quick     use a reduced parameter grid and a smaller scale (divisor 100)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut divisor: u32 = 20;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--scale" => {
                divisor = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(divisor);
                i += 1;
            }
            "--quick" => quick = true,
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    const EXPERIMENTS: [&str; 19] = [
        "all", "table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
        "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
    ];
    if !EXPERIMENTS.contains(&experiment.as_str()) {
        eprintln!("unknown experiment {experiment:?}\n{USAGE}");
        std::process::exit(2);
    }
    if quick {
        divisor = divisor.max(100);
    }
    let grid_params = if quick {
        ParameterGrid::quick()
    } else {
        ParameterGrid::paper()
    };

    eprintln!("# generating five synthetic sources at 1/{divisor} of Table I scale …");
    let env = ExperimentEnv::new(divisor, 0x1CDE_2025);
    eprintln!("# total datasets: {}", env.dataset_count());

    let run = |name: &str| experiment == "all" || experiment == name;

    if run("table1") {
        table1(&env);
    }
    if run("table2") {
        table2(&grid_params);
    }
    if run("fig7") {
        fig7(&env);
    }
    if run("fig8") {
        fig8(&env, &grid_params);
    }
    if run("fig9") {
        ojsp_sweep(&env, &grid_params, Sweep::K);
    }
    if run("fig10") {
        ojsp_sweep(&env, &grid_params, Sweep::Theta);
    }
    if run("fig11") {
        ojsp_sweep(&env, &grid_params, Sweep::Q);
    }
    if run("fig12") {
        fig12(&env, &grid_params);
    }
    if run("fig13") || run("fig14") {
        fig13_14(&env, &grid_params);
    }
    if run("fig15") {
        cjsp_sweep(&env, &grid_params, Sweep::K);
    }
    if run("fig16") {
        cjsp_sweep(&env, &grid_params, Sweep::Theta);
    }
    if run("fig17") {
        cjsp_sweep(&env, &grid_params, Sweep::Q);
    }
    if run("fig18") {
        cjsp_sweep(&env, &grid_params, Sweep::Delta);
    }
    if run("fig19") || run("fig20") {
        fig19_20(&env, &grid_params);
    }
    if run("fig21") {
        maintenance(&env, &grid_params, Maintenance::Insert);
    }
    if run("fig22") {
        maintenance(&env, &grid_params, Maintenance::Update);
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn header(title: &str) {
    println!();
    println!("# {title}");
}

// ---------------------------------------------------------------------------
// Table I & II, Fig. 7
// ---------------------------------------------------------------------------

fn table1(env: &ExperimentEnv) {
    header("Table I — statistics of the five (synthetic) data sources");
    println!("source\tdatasets\tpoints\tlon range\tlat range");
    for (name, datasets) in &env.source_data {
        let stats = SourceStats::compute(name.clone(), datasets);
        let (lon, lat) = match stats.extent {
            Some(e) => (
                format!("[{:.2}, {:.2}]", e.min.x, e.max.x),
                format!("[{:.2}, {:.2}]", e.min.y, e.max.y),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        println!(
            "{}\t{}\t{}\t{}\t{}",
            stats.name, stats.dataset_count, stats.point_count, lon, lat
        );
    }
}

fn table2(grid: &ParameterGrid) {
    header("Table II — parameter settings (defaults marked with *)");
    let fmt = |values: &[String], default: &str| {
        values
            .iter()
            .map(|v| {
                if v == default {
                    format!("{v}*")
                } else {
                    v.clone()
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!(
        "k: number of results\t{}",
        fmt(
            &grid
                .k_values
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>(),
            &grid.default_k.to_string()
        )
    );
    println!(
        "q: number of queries\t{}",
        fmt(
            &grid
                .q_values
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>(),
            &grid.default_q.to_string()
        )
    );
    println!(
        "theta: resolution\t{}",
        fmt(
            &grid
                .theta_values
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>(),
            &grid.default_theta.to_string()
        )
    );
    println!(
        "delta: connectivity threshold\t{}",
        fmt(
            &grid
                .delta_values
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>(),
            &grid.default_delta.to_string()
        )
    );
    println!(
        "f: leaf node capacity\t{}",
        fmt(
            &grid
                .f_values
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>(),
            &grid.default_f.to_string()
        )
    );
}

fn fig7(env: &ExperimentEnv) {
    header("Fig. 7 — dataset distribution heatmaps (16x16 occupancy grid, % of datasets per row)");
    for idx in 0..env.source_data.len() {
        let datasets = env.source(idx);
        let mut counts = [[0usize; 16]; 16];
        let stats = SourceStats::compute(env.source_name(idx), datasets);
        let Some(extent) = stats.extent else { continue };
        let mut total = 0usize;
        for d in datasets {
            if let Some(m) = d.mbr() {
                let c = m.center();
                let gx = (((c.x - extent.min.x) / extent.width().max(1e-9)) * 16.0).clamp(0.0, 15.0)
                    as usize;
                let gy = (((c.y - extent.min.y) / extent.height().max(1e-9)) * 16.0)
                    .clamp(0.0, 15.0) as usize;
                counts[gy][gx] += 1;
                total += 1;
            }
        }
        println!("## {}", env.source_name(idx));
        for row in counts.iter().rev() {
            let line: Vec<String> = row
                .iter()
                .map(|c| format!("{:3.0}", 100.0 * *c as f64 / total.max(1) as f64))
                .collect();
            println!("{}", line.join(" "));
        }
    }
}

// ---------------------------------------------------------------------------
// Fig. 8 — index construction time and memory vs θ
// ---------------------------------------------------------------------------

fn fig8(env: &ExperimentEnv, grid: &ParameterGrid) {
    header("Fig. 8 (left) — index construction time vs theta (seconds, per source)");
    println!(
        "source\ttheta\t{}",
        IndexKind::all().map(|k| k.name()).join("\t")
    );
    let mut memory_rows: Vec<String> = Vec::new();
    for source_idx in 0..env.source_data.len() {
        for &theta in &grid.theta_values {
            let nodes = env.dataset_nodes(source_idx, theta);
            let mut time_cells = Vec::new();
            let mut mem_cells = Vec::new();
            for kind in IndexKind::all() {
                let start = Instant::now();
                let index = kind.build(nodes.clone(), grid.default_f);
                let elapsed = start.elapsed();
                time_cells.push(format!("{:.4}", elapsed.as_secs_f64()));
                mem_cells.push(format!(
                    "{:.2}",
                    index.memory_bytes() as f64 / (1024.0 * 1024.0)
                ));
            }
            println!(
                "{}\t{}\t{}",
                env.source_name(source_idx),
                theta,
                time_cells.join("\t")
            );
            memory_rows.push(format!(
                "{}\t{}\t{}",
                env.source_name(source_idx),
                theta,
                mem_cells.join("\t")
            ));
        }
    }
    header("Fig. 8 (right) — index memory vs theta (MiB, per source)");
    println!(
        "source\ttheta\t{}",
        IndexKind::all().map(|k| k.name()).join("\t")
    );
    for row in memory_rows {
        println!("{row}");
    }
}

// ---------------------------------------------------------------------------
// Figs. 9–11 — OJSP search time sweeps
// ---------------------------------------------------------------------------

/// Which parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sweep {
    K,
    Q,
    Theta,
    Delta,
}

fn ojsp_sweep(env: &ExperimentEnv, grid: &ParameterGrid, sweep: Sweep) {
    let (figure, label, xs): (&str, &str, Vec<f64>) = match sweep {
        Sweep::K => (
            "Fig. 9",
            "k",
            grid.k_values.iter().map(|v| *v as f64).collect(),
        ),
        Sweep::Theta => (
            "Fig. 10",
            "theta",
            grid.theta_values.iter().map(|v| *v as f64).collect(),
        ),
        Sweep::Q => (
            "Fig. 11",
            "q",
            grid.q_values.iter().map(|v| *v as f64).collect(),
        ),
        Sweep::Delta => unreachable!("delta is not an OJSP parameter"),
    };
    header(&format!(
        "{figure} — OJSP search time vs {label} (ms, summed over the five sources)"
    ));
    println!("{label}\t{}", IndexKind::all().map(|k| k.name()).join("\t"));
    for &x in &xs {
        let k = if sweep == Sweep::K {
            x as usize
        } else {
            grid.default_k
        };
        let q = if sweep == Sweep::Q {
            x as usize
        } else {
            grid.default_q
        };
        let theta = if sweep == Sweep::Theta {
            x as u32
        } else {
            grid.default_theta
        };
        let queries = env.query_cells(q, theta);
        let mut cells = Vec::new();
        for kind in IndexKind::all() {
            let mut total = Duration::ZERO;
            for source_idx in 0..env.source_data.len() {
                let nodes = env.dataset_nodes(source_idx, theta);
                let index = kind.build(nodes, grid.default_f);
                let start = Instant::now();
                for query in &queries {
                    std::hint::black_box(index.overlap_search(query, k));
                }
                total += start.elapsed();
            }
            cells.push(format!("{:.3}", ms(total)));
        }
        println!("{x}\t{}", cells.join("\t"));
    }
}

// ---------------------------------------------------------------------------
// Fig. 12 — OJSP search time vs leaf capacity f (OverlapSearch vs Rtree)
// ---------------------------------------------------------------------------

fn fig12(env: &ExperimentEnv, grid: &ParameterGrid) {
    header("Fig. 12 — OJSP search time vs f (ms, OverlapSearch vs Rtree)");
    println!("f\tOverlapSearch\tRtree");
    let theta = grid.default_theta;
    let queries = env.query_cells(grid.default_q, theta);
    for &f in &grid.f_values {
        let mut dits_total = Duration::ZERO;
        let mut rtree_total = Duration::ZERO;
        for source_idx in 0..env.source_data.len() {
            let nodes = env.dataset_nodes(source_idx, theta);
            let dits = IndexKind::Dits.build(nodes.clone(), f);
            let rtree = IndexKind::RTree.build(nodes, f);
            let start = Instant::now();
            for query in &queries {
                std::hint::black_box(dits.overlap_search(query, grid.default_k));
            }
            dits_total += start.elapsed();
            let start = Instant::now();
            for query in &queries {
                std::hint::black_box(rtree.overlap_search(query, grid.default_k));
            }
            rtree_total += start.elapsed();
        }
        println!("{f}\t{:.3}\t{:.3}", ms(dits_total), ms(rtree_total));
    }
}

// ---------------------------------------------------------------------------
// Figs. 13–14 — OJSP communication cost and transmission time vs q
// ---------------------------------------------------------------------------

fn fig13_14(env: &ExperimentEnv, grid: &ParameterGrid) {
    header("Fig. 13 — OJSP communication cost vs q (bytes)");
    let strategies = [
        ("OverlapSearch", DistributionStrategy::PrunedClipped),
        ("Rtree", DistributionStrategy::Broadcast),
        ("Josie", DistributionStrategy::Broadcast),
        ("QuadTree", DistributionStrategy::Broadcast),
        ("STS3", DistributionStrategy::Broadcast),
    ];
    println!(
        "q\t{}",
        strategies
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join("\t")
    );
    let comm_config = CommConfig::default();
    let mut time_rows: Vec<String> = Vec::new();
    for &q in &grid.q_values {
        let queries = env.query_datasets(q);
        let mut byte_cells = Vec::new();
        let mut time_cells = Vec::new();
        for (_, strategy) in &strategies {
            let framework = env.framework(FrameworkConfig {
                resolution: grid.default_theta,
                leaf_capacity: grid.default_f,
                delta_cells: grid.default_delta,
                strategy: *strategy,
                workers: 0,
                comm: comm_config,
            });
            let outcome = framework
                .search(&SearchRequest::ojsp_batch(queries.clone()).k(grid.default_k))
                .expect("in-process search");
            byte_cells.push(outcome.comm.total_bytes().to_string());
            time_cells.push(format!(
                "{:.2}",
                outcome.comm.transmission_time_ms(&comm_config)
            ));
        }
        println!("{q}\t{}", byte_cells.join("\t"));
        time_rows.push(format!("{q}\t{}", time_cells.join("\t")));
    }
    header("Fig. 14 — OJSP transmission time vs q (ms at 1 MiB/s)");
    println!(
        "q\t{}",
        strategies
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join("\t")
    );
    for row in time_rows {
        println!("{row}");
    }
}

// ---------------------------------------------------------------------------
// Figs. 15–18 — CJSP search time sweeps
// ---------------------------------------------------------------------------

fn cjsp_sweep(env: &ExperimentEnv, grid: &ParameterGrid, sweep: Sweep) {
    let (figure, label, xs): (&str, &str, Vec<f64>) = match sweep {
        Sweep::K => (
            "Fig. 15",
            "k",
            grid.k_values.iter().map(|v| *v as f64).collect(),
        ),
        Sweep::Theta => (
            "Fig. 16",
            "theta",
            grid.theta_values.iter().map(|v| *v as f64).collect(),
        ),
        Sweep::Q => (
            "Fig. 17",
            "q",
            grid.q_values.iter().map(|v| *v as f64).collect(),
        ),
        Sweep::Delta => ("Fig. 18", "delta", grid.delta_values.clone()),
    };
    header(&format!(
        "{figure} — CJSP search time vs {label} (ms, summed over the five sources)"
    ));
    println!("{label}\tCoverageSearch\tSG+DITS\tSG");
    for &x in &xs {
        let k = if sweep == Sweep::K {
            x as usize
        } else {
            grid.default_k
        };
        let q = if sweep == Sweep::Q {
            x as usize
        } else {
            grid.default_q
        };
        let theta = if sweep == Sweep::Theta {
            x as u32
        } else {
            grid.default_theta
        };
        let delta = if sweep == Sweep::Delta {
            x
        } else {
            grid.default_delta
        };
        let queries = env.query_cells(q, theta);
        let mut coverage_total = Duration::ZERO;
        let mut sg_dits_total = Duration::ZERO;
        let mut sg_total = Duration::ZERO;
        for source_idx in 0..env.source_data.len() {
            let nodes: Vec<DatasetNode> = env.dataset_nodes(source_idx, theta);
            let index = DitsLocal::build(
                nodes.clone(),
                DitsLocalConfig {
                    leaf_capacity: grid.default_f,
                },
            );
            let start = Instant::now();
            for query in &queries {
                std::hint::black_box(coverage_search(
                    &index,
                    query,
                    CoverageConfig::new(k, delta),
                ));
            }
            coverage_total += start.elapsed();
            let start = Instant::now();
            for query in &queries {
                std::hint::black_box(sg_dits_coverage_search(&index, query, k, delta));
            }
            sg_dits_total += start.elapsed();
            let start = Instant::now();
            for query in &queries {
                std::hint::black_box(sg_coverage_search(&nodes, query, k, delta));
            }
            sg_total += start.elapsed();
        }
        println!(
            "{x}\t{:.3}\t{:.3}\t{:.3}",
            ms(coverage_total),
            ms(sg_dits_total),
            ms(sg_total)
        );
    }
}

// ---------------------------------------------------------------------------
// Figs. 19–20 — CJSP communication cost and transmission time vs q
// ---------------------------------------------------------------------------

fn fig19_20(env: &ExperimentEnv, grid: &ParameterGrid) {
    header("Fig. 19 — CJSP communication cost vs q (bytes)");
    let strategies = [
        ("CoverageSearch", DistributionStrategy::PrunedClipped),
        ("SG+DITS", DistributionStrategy::Pruned),
        ("SG", DistributionStrategy::Broadcast),
    ];
    println!(
        "q\t{}",
        strategies
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join("\t")
    );
    let comm_config = CommConfig::default();
    let mut time_rows: Vec<String> = Vec::new();
    for &q in &grid.q_values {
        let queries = env.query_datasets(q);
        let mut byte_cells = Vec::new();
        let mut time_cells = Vec::new();
        for (_, strategy) in &strategies {
            let framework = env.framework(FrameworkConfig {
                resolution: grid.default_theta,
                leaf_capacity: grid.default_f,
                delta_cells: grid.default_delta,
                strategy: *strategy,
                workers: 0,
                comm: comm_config,
            });
            let outcome = framework
                .search(&SearchRequest::cjsp_batch(queries.clone()).k(grid.default_k))
                .expect("in-process search");
            byte_cells.push(outcome.comm.total_bytes().to_string());
            time_cells.push(format!(
                "{:.2}",
                outcome.comm.transmission_time_ms(&comm_config)
            ));
        }
        println!("{q}\t{}", byte_cells.join("\t"));
        time_rows.push(format!("{q}\t{}", time_cells.join("\t")));
    }
    header("Fig. 20 — CJSP transmission time vs q (ms at 1 MiB/s)");
    println!(
        "q\t{}",
        strategies
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join("\t")
    );
    for row in time_rows {
        println!("{row}");
    }
}

// ---------------------------------------------------------------------------
// Figs. 21–22 — index maintenance
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Maintenance {
    Insert,
    Update,
}

fn maintenance(env: &ExperimentEnv, grid: &ParameterGrid, mode: Maintenance) {
    let (figure, what) = match mode {
        Maintenance::Insert => ("Fig. 21", "inserts"),
        Maintenance::Update => ("Fig. 22", "updates"),
    };
    header(&format!(
        "{figure} — index update time vs number of dataset {what} (ms)"
    ));
    println!("beta\t{}", IndexKind::all().map(|k| k.name()).join("\t"));
    let theta = grid.default_theta;
    // Base index over the Transit source; the batch comes from the NYU
    // source so inserted ids never collide with existing ones.
    let base_nodes = env.dataset_nodes(3, theta);
    let pool = env.dataset_nodes(2, theta);
    for &beta in &[100usize, 150, 200, 250, 300] {
        let batch: Vec<DatasetNode> = match mode {
            Maintenance::Insert => pool
                .iter()
                .cycle()
                .take(beta)
                .enumerate()
                .map(|(i, n)| {
                    // Re-key so every inserted dataset has a fresh id.
                    let mut node = n.clone();
                    node.id = 1_000_000 + i as u32;
                    node
                })
                .collect(),
            Maintenance::Update => {
                // Move existing datasets to a new location derived from the
                // pool source (same id, different cells).
                base_nodes
                    .iter()
                    .cycle()
                    .take(beta)
                    .zip(pool.iter().cycle())
                    .map(|(original, donor)| {
                        let mut node = donor.clone();
                        node.id = original.id;
                        node
                    })
                    .collect()
            }
        };
        let mut cells = Vec::new();
        for kind in IndexKind::all() {
            let mut index = kind.build(base_nodes.clone(), grid.default_f);
            let start = Instant::now();
            for node in &batch {
                match mode {
                    Maintenance::Insert => {
                        std::hint::black_box(index.insert(node.clone()));
                    }
                    Maintenance::Update => {
                        std::hint::black_box(index.update(node.clone()));
                    }
                }
            }
            cells.push(format!("{:.3}", ms(start.elapsed())));
        }
        println!("{beta}\t{}", cells.join("\t"));
    }
}
