//! `load-gen` — open-loop load generator for the federated deployment.
//!
//! Spawns one server per data source (in-process [`SourceServer`] threads by
//! default, real `source-server` child processes with `--server-bin`), then
//! fires single-query OJSP / CJSP / kNN requests at it with Poisson
//! (exponential inter-arrival) timing.  The loop is **open**: arrival times
//! are scheduled up front from the requested rate, and a request's latency
//! is measured from its *scheduled* arrival, so a saturated fleet shows up
//! as growing latency instead of a silently throttled rate
//! (no coordinated omission).
//!
//! ```text
//! load-gen --rate 200 --duration 5 --concurrency 8 --mix 2:1:1
//! load-gen --transport per-call --rate 50 --duration 2
//! load-gen --server-bin target/release/source-server --rate 100
//! ```
//!
//! The last stdout line is machine-readable:
//!
//! ```text
//! RESULT transport=pooled sent=1003 completed=1003 errors=0 qps=199.8 p50_ns=812345 p99_ns=2345678
//! ```
//!
//! Everything is deterministic given `--seed` (data, arrival schedule, and
//! query-kind mix draw from the same vendored SplitMix64 generator).

use std::io::{BufRead, Write as _};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use bench::ExperimentEnv;
use multisource::{
    DataCenter, EngineConfig, FrameworkConfig, QueryEngine, SearchRequest, SourceServer,
    SourceTransport, TcpTransport,
};
use net::PooledTcpTransport;
use rand::prelude::*;
use spatial::SourceId;

const USAGE: &str = "\
Usage: load-gen [OPTIONS]

Open-loop Poisson load against a loopback source-server fleet.

  --rate QPS          mean arrival rate, queries/sec      (default: 200)
  --duration SECS     how long to schedule arrivals for   (default: 5)
  --concurrency N     worker threads issuing requests     (default: 8)
  --mix A:B:C         ojsp:cjsp:knn weight mix            (default: 1:1:1)
  --transport KIND    pooled | per-call                   (default: pooled)
  --server-bin PATH   spawn PATH per source instead of in-process threads
  --queries N         distinct query datasets to cycle    (default: 16)
  --k N               top-k per query                     (default: 5)
  --divisor N         datagen scale divisor               (default: 400)
  --seed N            deterministic seed                  (default: 53621)";

/// Which federated transport carries the load.
#[derive(Clone, Copy, PartialEq)]
enum TransportChoice {
    Pooled,
    PerCall,
}

impl TransportChoice {
    fn name(self) -> &'static str {
        match self {
            TransportChoice::Pooled => "pooled",
            TransportChoice::PerCall => "per-call",
        }
    }
}

struct Args {
    rate: f64,
    duration: f64,
    concurrency: usize,
    mix: [u64; 3],
    transport: TransportChoice,
    server_bin: Option<String>,
    queries: usize,
    k: usize,
    divisor: u32,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        rate: 200.0,
        duration: 5.0,
        concurrency: 8,
        mix: [1, 1, 1],
        transport: TransportChoice::Pooled,
        server_bin: None,
        queries: 16,
        k: 5,
        divisor: 400,
        seed: 53_621,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--rate" => {
                parsed.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--duration" => {
                parsed.duration = value("--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?
            }
            "--concurrency" => {
                parsed.concurrency = value("--concurrency")?
                    .parse()
                    .map_err(|e| format!("--concurrency: {e}"))?
            }
            "--mix" => parsed.mix = parse_mix(&value("--mix")?)?,
            "--transport" => {
                parsed.transport = match value("--transport")?.as_str() {
                    "pooled" => TransportChoice::Pooled,
                    "per-call" => TransportChoice::PerCall,
                    other => return Err(format!("--transport: {other:?} is not pooled/per-call")),
                }
            }
            "--server-bin" => parsed.server_bin = Some(value("--server-bin")?),
            "--queries" => {
                parsed.queries = value("--queries")?
                    .parse()
                    .map_err(|e| format!("--queries: {e}"))?
            }
            "--k" => parsed.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--divisor" => {
                parsed.divisor = value("--divisor")?
                    .parse()
                    .map_err(|e| format!("--divisor: {e}"))?
            }
            "--seed" => {
                parsed.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if !(parsed.rate > 0.0 && parsed.rate.is_finite()) {
        return Err("--rate must be positive".into());
    }
    if !(parsed.duration > 0.0 && parsed.duration.is_finite()) {
        return Err("--duration must be positive".into());
    }
    if parsed.concurrency == 0 {
        return Err("--concurrency must be at least 1".into());
    }
    if parsed.queries == 0 || parsed.k == 0 {
        return Err("--queries and --k must be at least 1".into());
    }
    Ok(parsed)
}

/// Parses an `A:B:C` weight triple; zero weights mute a kind entirely.
fn parse_mix(raw: &str) -> Result<[u64; 3], String> {
    let parts: Vec<&str> = raw.split(':').collect();
    let [a, b, c] = parts.as_slice() else {
        return Err(format!("--mix: {raw:?} is not A:B:C"));
    };
    let parse = |p: &str| p.parse::<u64>().map_err(|e| format!("--mix: {e}"));
    let mix = [parse(a)?, parse(b)?, parse(c)?];
    if mix.iter().sum::<u64>() == 0 {
        return Err("--mix: at least one weight must be positive".into());
    }
    Ok(mix)
}

const KIND_NAMES: [&str; 3] = ["ojsp", "cjsp", "knn"];

// ---------------------------------------------------------------------------
// Fleet: in-process server threads or spawned source-server processes
// ---------------------------------------------------------------------------

/// One spawned `source-server` child with its stdin/stdout kept for the
/// `SHUTDOWN` / `DRAINED` drain handshake.
struct ServerProcess {
    child: Child,
    addr: String,
    stdin: Option<std::process::ChildStdin>,
    stdout: std::io::BufReader<std::process::ChildStdout>,
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The serving side of the benchmark: either [`SourceServer`] threads in
/// this process or `--server-bin` child processes, reached identically over
/// loopback TCP.
enum Fleet {
    Threads(Vec<SourceServer>),
    Processes(Vec<ServerProcess>, PathBuf),
}

impl Fleet {
    fn endpoints(&self) -> Vec<(SourceId, String)> {
        match self {
            Fleet::Threads(servers) => servers.iter().map(SourceServer::endpoint).collect(),
            Fleet::Processes(servers, _) => servers
                .iter()
                .enumerate()
                .map(|(i, s)| (i as SourceId, s.addr.clone()))
                .collect(),
        }
    }

    /// Drains every server gracefully; child processes get the `SHUTDOWN`
    /// line and are awaited until they confirm `DRAINED`.
    fn shutdown(self) {
        match self {
            Fleet::Threads(servers) => {
                for server in servers {
                    server.shutdown();
                }
            }
            Fleet::Processes(mut servers, dir) => {
                for server in &mut servers {
                    if let Some(mut stdin) = server.stdin.take() {
                        let _ = stdin.write_all(b"SHUTDOWN\n");
                    }
                    let mut line = String::new();
                    while server.stdout.read_line(&mut line).is_ok_and(|n| n > 0) {
                        if line.trim() == "DRAINED" {
                            break;
                        }
                        line.clear();
                    }
                    let _ = server.child.wait();
                }
                drop(servers);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

fn spawn_fleet(env: &ExperimentEnv, fw_resolution: u32, server_bin: Option<&str>) -> Fleet {
    let Some(bin) = server_bin else {
        let fw = env.framework(FrameworkConfig {
            resolution: fw_resolution,
            ..FrameworkConfig::default()
        });
        let servers = fw
            .sources()
            .iter()
            .map(|s| SourceServer::spawn("127.0.0.1:0", s.clone()).expect("bind loopback"))
            .collect();
        return Fleet::Threads(servers);
    };

    let dir = std::env::temp_dir().join(format!("load-gen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let servers = env
        .source_data
        .iter()
        .enumerate()
        .map(|(i, (_, datasets))| {
            // One `dataset_id lon lat` triple per line, the binary's format.
            let data_path = dir.join(format!("source-{i}.tsv"));
            let mut file = std::fs::File::create(&data_path).expect("create data file");
            for d in datasets {
                for p in &d.points {
                    writeln!(file, "{} {} {}", d.id, p.x, p.y).expect("write data file");
                }
            }
            drop(file);

            let mut child = Command::new(bin)
                .args([
                    "--id",
                    &i.to_string(),
                    "--resolution",
                    &fw_resolution.to_string(),
                    "--listen",
                    "127.0.0.1:0",
                    "--data",
                    data_path.to_str().expect("utf8 path"),
                ])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn source-server");
            let stdin = child.stdin.take();
            let mut stdout = std::io::BufReader::new(child.stdout.take().expect("piped stdout"));
            let mut line = String::new();
            stdout.read_line(&mut line).expect("read ready line");
            let addr = line
                .trim()
                .strip_prefix("LISTENING ")
                .unwrap_or_else(|| panic!("unexpected ready line {line:?}"))
                .to_string();
            ServerProcess {
                child,
                addr,
                stdin,
                stdout,
            }
        })
        .collect();
    Fleet::Processes(servers, dir)
}

// ---------------------------------------------------------------------------
// The open loop
// ---------------------------------------------------------------------------

/// What one worker thread brings home.
struct WorkerTally {
    latencies_ns: Vec<u64>,
    completed_by_kind: [u64; 3],
    errors: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let resolution = 11;

    eprintln!(
        "load-gen: transport={}, rate={}/s for {}s, concurrency={}, mix ojsp:cjsp:knn = {}:{}:{}",
        args.transport.name(),
        args.rate,
        args.duration,
        args.concurrency,
        args.mix[0],
        args.mix[1],
        args.mix[2],
    );

    let env = ExperimentEnv::new(args.divisor, args.seed);
    let fleet = spawn_fleet(&env, resolution, args.server_bin.as_deref());
    let endpoints = fleet.endpoints();
    eprintln!(
        "load-gen: {} sources serving on loopback ({})",
        endpoints.len(),
        if args.server_bin.is_some() {
            "child processes"
        } else {
            "in-process threads"
        },
    );

    // One engine over the chosen transport; the data center bootstraps its
    // DITS-G from the fleet itself, exactly as a real deployment would.
    let per_call_transport;
    let mut pooled_transport: Option<PooledTcpTransport> = None;
    let transport: &dyn SourceTransport = match args.transport {
        TransportChoice::PerCall => {
            per_call_transport = TcpTransport::new(endpoints);
            &per_call_transport
        }
        TransportChoice::Pooled => pooled_transport.insert(
            PooledTcpTransport::new(endpoints).map_err(|e| format!("pooled transport: {e}"))?,
        ),
    };
    let leaf_capacity = FrameworkConfig::default().leaf_capacity;
    let center = DataCenter::from_transport(transport, leaf_capacity)
        .map_err(|e| format!("summary poll: {e}"))?;
    let engine = QueryEngine::new(&center, transport, EngineConfig::default());

    // Single-query request templates, one per (kind, query): the hot loop
    // only indexes into this table.
    let query_data = env.query_datasets(args.queries);
    let requests: Vec<Vec<SearchRequest>> = (0..3)
        .map(|kind| {
            query_data
                .iter()
                .map(|q| match kind {
                    0 => SearchRequest::ojsp_batch(vec![q.clone()]).k(args.k),
                    1 => SearchRequest::cjsp_batch(vec![q.clone()])
                        .k(args.k)
                        .delta_cells(4.0),
                    _ => SearchRequest::knn_batch(vec![q.clone()]).k(args.k),
                })
                .collect()
        })
        .collect();

    // Schedule every arrival up front: exponential gaps at the target rate,
    // each arrival tagged with a weighted query kind and a query index.
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x4C4F_4144);
    let mix_total: u64 = args.mix.iter().sum();
    let mut arrivals: Vec<(u64, usize, usize)> = Vec::new();
    let mut clock_secs = 0.0_f64;
    while clock_secs < args.duration {
        let uniform: f64 = rng.random();
        clock_secs += -(1.0 - uniform).ln() / args.rate;
        if clock_secs >= args.duration {
            break;
        }
        let mut draw = rng.random_range(0..mix_total);
        let mut kind = 2;
        for (i, &weight) in args.mix.iter().enumerate() {
            if draw < weight {
                kind = i;
                break;
            }
            draw -= weight;
        }
        let query_idx = arrivals.len() % query_data.len();
        arrivals.push(((clock_secs * 1e9) as u64, kind, query_idx));
    }
    eprintln!("load-gen: scheduled {} arrivals", arrivals.len());

    // Workers pull arrivals off a shared cursor, sleep until each one's
    // scheduled instant, and measure latency from that instant — queueing
    // delay behind a slow fleet counts against the fleet.
    let cursor = AtomicUsize::new(0);
    let started = Instant::now();
    let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.concurrency)
            .map(|_| {
                scope.spawn(|| {
                    let mut tally = WorkerTally {
                        latencies_ns: Vec::new(),
                        completed_by_kind: [0; 3],
                        errors: 0,
                    };
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(offset_ns, kind, query_idx)) = arrivals.get(i) else {
                            break;
                        };
                        let target = started + Duration::from_nanos(offset_ns);
                        if let Some(wait) = target.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let request = &requests[kind][query_idx];
                        match engine.run(request) {
                            Ok(response) => {
                                std::hint::black_box(&response);
                                let latency = Instant::now().duration_since(target);
                                tally.latencies_ns.push(latency.as_nanos() as u64);
                                tally.completed_by_kind[kind] += 1;
                            }
                            Err(_) => tally.errors += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> = Vec::new();
    let mut completed_by_kind = [0u64; 3];
    let mut errors = 0u64;
    for tally in tallies {
        latencies.extend(tally.latencies_ns);
        for (total, n) in completed_by_kind.iter_mut().zip(tally.completed_by_kind) {
            *total += n;
        }
        errors += tally.errors;
    }
    latencies.sort_unstable();
    let completed = latencies.len() as u64;
    let qps = completed as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);

    let per_kind: Vec<String> = KIND_NAMES
        .iter()
        .zip(completed_by_kind)
        .map(|(name, n)| format!("{name} {n}"))
        .collect();
    eprintln!(
        "load-gen: completed {completed} ({}), {errors} errors in {:.2}s",
        per_kind.join(", "),
        elapsed.as_secs_f64(),
    );
    if let Some(pooled) = &pooled_transport {
        let metrics = pooled.metrics();
        eprintln!(
            "load-gen: pool retries={} timeouts={} backpressure={}",
            metrics.retries.get(),
            metrics.timeouts.get(),
            metrics.backpressure.get(),
        );
    }
    println!(
        "RESULT transport={} sent={} completed={completed} errors={errors} qps={qps:.1} \
         p50_ns={p50} p99_ns={p99}",
        args.transport.name(),
        arrivals.len(),
    );

    fleet.shutdown();
    if errors > 0 {
        return Err(format!("{errors} requests failed"));
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("load-gen: {message}");
            std::process::ExitCode::FAILURE
        }
    }
}
