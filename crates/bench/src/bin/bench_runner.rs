//! Perf-trajectory runner: a fixed OJSP / CJSP / kNN batch suite on
//! deterministic datagen seeds, emitting a schema'd `BENCH_<date>.json`
//! snapshot that is committed alongside each change.
//!
//! Usage:
//!
//! ```text
//! bench-runner [--quick] [--out PATH]
//! bench-runner --validate PATH
//!
//! --quick          reduced scale and iteration counts (the CI smoke run)
//! --out PATH       where to write the snapshot (default BENCH_<date>.json)
//! --validate PATH  check an existing snapshot against the schema and exit
//! ```
//!
//! Every measured kernel reports throughput (`ops_per_sec`) plus per-op
//! `p50_ns` / `p99_ns`; the `deltas` section pairs each new kernel with its
//! baseline **measured in the same run**, so the committed speedups are
//! apples-to-apples on one machine:
//!
//! * `kernel/intersection/dense-grid` — the word-parallel (popcount) cell
//!   intersection against the scalar sorted-merge on dense grid sets.
//! * `kernel/distance/cached`, `kernel/distance/bounded` — the verification
//!   plane sweep over the cached per-node sorted-coordinate state, without
//!   and with a k-th-best cutoff, against the fresh-state unbounded sweep.
//! * `batch/ojsp`, `batch/cjsp` — the shared frontier traversal against the
//!   per-query search loop over the same local indexes.
//! * `knn/per-query` — the bounded kNN verification kernel against the
//!   unbounded fresh-state oracle over the same indexes.
//! * `engine/ojsp` — the multi-source engine's per-source batched shard
//!   mode against the per-(query, source) oracle.
//!
//! The `transport` section measures the federated deployment itself: the
//! same OJSP / kNN workload driven over loopback TCP through the per-call
//! [`TcpTransport`] (one connection per request) and through the pooled,
//! pipelined [`net::PooledTcpTransport`], reporting sustained QPS plus
//! per-query p50/p99 for each.  Answers are asserted identical to the
//! in-process oracle before either transport is timed.
//!
//! The `phases` section reports each engine entry's source-side
//! traversal-vs-verification time split, measured through a traced
//! (`SearchRequest::with_trace`) run of the same workload, and the `env`
//! section records the machine context (CPU count, cargo profile, git
//! commit) the numbers were taken in.
//!
//! The suite asserts result parity between every new/baseline pair before
//! timing them, so a snapshot can never report the speed of diverging code.

use std::time::{Duration, Instant};

use bench::ExperimentEnv;
use dits::{
    coverage_search, coverage_search_batch, nearest_datasets, nearest_datasets_unbounded,
    overlap_search, overlap_search_batch, CoverageConfig, DitsLocal, DitsLocalConfig,
};
use multisource::{
    DataCenter, FrameworkConfig, QueryEngine, SearchRequest, SearchResponse, ShardMode,
    SourceServer, TcpTransport,
};
use net::PooledTcpTransport;
use spatial::distance::{dataset_distance, dataset_distance_bounded, dataset_distance_uncached};
use spatial::zorder::cell_id;
use spatial::CellSet;

const USAGE: &str = "\
Usage: bench-runner [--quick] [--out PATH]
       bench-runner --validate PATH

--quick          reduced scale and iteration counts (the CI smoke run)
--out PATH       where to write the snapshot (default BENCH_<date>.json)
--validate PATH  check an existing snapshot against the schema and exit";

/// Schema version stamped into (and required from) every snapshot.
/// v2 added the `env` block and the `phases` breakdown; v3 added the
/// verification-sweep kernels (`kernel/distance/*`, `knn/per-query` delta)
/// and requires the phase breakdown to cover every engine mode; v4 added
/// the `transport` section (per-call TCP vs pooled pipelined QPS and
/// p50/p99 over a loopback source-server fleet).
const SCHEMA_VERSION: u64 = 4;

/// Engine entries whose traversal/verify phase split every snapshot must
/// report — a snapshot that drops one silently loses the trajectory of the
/// paper's "verification dominates" claim.
const REQUIRED_PHASES: [&str; 4] = [
    "engine/ojsp/per-query",
    "engine/ojsp/per-source-batch",
    "engine/cjsp/per-query",
    "engine/knn/per-query",
];

/// Both federated deployments every snapshot's `transport` section must
/// cover — without the per-call rows the pooled numbers have no same-run
/// baseline, and vice versa.
const REQUIRED_TRANSPORT_PREFIXES: [&str; 2] = ["transport/per-call/", "transport/pooled/"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--quick" => quick = true,
            "--out" => {
                out = args.get(i + 1).cloned();
                if out.is_none() {
                    eprintln!("--out needs a path\n{USAGE}");
                    std::process::exit(2);
                }
                i += 1;
            }
            "--validate" => {
                validate = args.get(i + 1).cloned();
                if validate.is_none() {
                    eprintln!("--validate needs a path\n{USAGE}");
                    std::process::exit(2);
                }
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = validate {
        match validate_snapshot(&path) {
            Ok(summary) => println!("{path}: OK ({summary})"),
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let date = today_utc();
    let out = out.unwrap_or_else(|| format!("BENCH_{date}.json"));
    let suite = run_suite(quick);
    let json = render_snapshot(&date, quick, &env_info(), &suite);
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    // A snapshot that does not parse against its own schema must never be
    // committed; re-validating what was just written keeps writer and
    // validator honest with each other.
    if let Err(e) = validate_snapshot(&out) {
        eprintln!("{out}: snapshot failed self-validation — {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    for d in &suite.deltas {
        println!("  {:<40} {:>6.2}x vs {}", d.name, d.speedup, d.baseline);
    }
    for t in &suite.transport {
        println!(
            "  {:<40} {:>8.0} qps  p50 {:>9.0} ns  p99 {:>9.0} ns",
            t.name, t.qps, t.p50_ns, t.p99_ns
        );
    }
    for p in &suite.phases {
        println!(
            "  {:<40} verify {:>5.1}% of source time",
            p.name,
            p.verify_share * 100.0
        );
    }
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// One measured kernel: throughput plus per-op latency percentiles.
struct KernelReport {
    name: String,
    iters: usize,
    ops_per_sec: f64,
    p50_ns: f64,
    p99_ns: f64,
}

/// One same-run comparison: `new` kernel over `baseline` kernel.
struct Delta {
    name: String,
    new: String,
    baseline: String,
    speedup: f64,
}

/// One engine entry's source-side phase split, from a traced run of the same
/// workload the kernel timings cover.
struct PhaseReport {
    name: String,
    traversal_ns: u64,
    verify_ns: u64,
    verify_share: f64,
}

/// One federated deployment's sustained throughput and per-query latency
/// over loopback TCP.
struct TransportReport {
    name: String,
    qps: f64,
    p50_ns: f64,
    p99_ns: f64,
}

impl TransportReport {
    /// Reinterprets a measured kernel as a transport row: per-op throughput
    /// is queries per second once the op is "run one query over the wire".
    fn from_kernel(k: &KernelReport) -> Self {
        Self {
            name: k.name.clone(),
            qps: k.ops_per_sec,
            p50_ns: k.p50_ns,
            p99_ns: k.p99_ns,
        }
    }
}

struct Suite {
    kernels: Vec<KernelReport>,
    deltas: Vec<Delta>,
    transport: Vec<TransportReport>,
    phases: Vec<PhaseReport>,
}

/// Extracts the traversal/verify split out of a traced [`SearchResponse`].
fn phase_report(name: &str, response: &SearchResponse) -> PhaseReport {
    let trace = response.trace.as_ref().expect("run was traced");
    let traversal = trace.total_named("traversal");
    let verify = trace.total_named("verify");
    let total = traversal + verify;
    PhaseReport {
        name: name.to_string(),
        traversal_ns: traversal.as_nanos() as u64,
        verify_ns: verify.as_nanos() as u64,
        verify_share: if total > Duration::ZERO {
            verify.as_secs_f64() / total.as_secs_f64()
        } else {
            0.0
        },
    }
}

/// The machine context a snapshot was measured in.
struct EnvInfo {
    cpus: usize,
    profile: &'static str,
    git_commit: String,
}

fn env_info() -> EnvInfo {
    EnvInfo {
        cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        profile: if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
        git_commit: std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string()),
    }
}

/// Times `work` (which performs `ops` operations per call) `samples` times
/// and folds the per-op nanosecond samples into a [`KernelReport`].
fn measure(name: &str, samples: usize, ops: usize, mut work: impl FnMut()) -> KernelReport {
    work(); // warm-up: caches (packed words, page-ins) are steady state
    let mut per_op_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let started = Instant::now();
        work();
        per_op_ns.push(started.elapsed().as_nanos() as f64 / ops as f64);
    }
    per_op_ns.sort_unstable_by(|a, b| a.total_cmp(b));
    let p50 = percentile(&per_op_ns, 50.0);
    let p99 = percentile(&per_op_ns, 99.0);
    KernelReport {
        name: name.to_string(),
        iters: samples * ops,
        ops_per_sec: if p50 > 0.0 { 1.0e9 / p50 } else { 0.0 },
        p50_ns: p50,
        p99_ns: p99,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn delta(name: &str, new: &KernelReport, baseline: &KernelReport) -> Delta {
    Delta {
        name: name.to_string(),
        new: new.name.clone(),
        baseline: baseline.name.clone(),
        speedup: if baseline.p50_ns > 0.0 {
            baseline.p50_ns / new.p50_ns.max(f64::MIN_POSITIVE)
        } else {
            0.0
        },
    }
}

/// A dense axis-aligned block of grid cells starting at `(x0, y0)`.
fn dense_block(x0: u32, y0: u32, w: u32, h: u32) -> CellSet {
    CellSet::from_cells((0..w).flat_map(|dx| (0..h).map(move |dy| cell_id(x0 + dx, y0 + dy))))
}

fn run_suite(quick: bool) -> Suite {
    let (divisor, queries_n, samples) = if quick { (400, 8, 5) } else { (100, 32, 20) };
    let theta = 11;
    let k = 10;
    let delta_cells = 4.0;
    let mut kernels = Vec::new();
    let mut deltas = Vec::new();

    // -- Kernel: dense-grid cell intersection, word-parallel vs scalar ------
    eprintln!("[1/7] kernel/intersection/dense-grid");
    let pairs: Vec<(CellSet, CellSet)> = (0..32)
        .map(|i| {
            let bx = (i as u32 % 8) * 96;
            let by = (i as u32 / 8) * 80;
            // Two 64x64 blocks overlapping in a 32-column band: dense in
            // word space, non-trivial intersection.
            (
                dense_block(bx, by, 64, 64),
                dense_block(bx + 32, by, 64, 64),
            )
        })
        .collect();
    for (a, b) in &pairs {
        assert_eq!(
            a.intersection_size_packed(b),
            a.intersection_size_linear(b),
            "packed and scalar kernels disagree"
        );
    }
    let kernel_samples = samples * 10;
    let packed = measure(
        "kernel/intersection/dense-grid/packed",
        kernel_samples,
        pairs.len(),
        || {
            for (a, b) in &pairs {
                std::hint::black_box(a.intersection_size_packed(std::hint::black_box(b)));
            }
        },
    );
    let scalar = measure(
        "kernel/intersection/dense-grid/scalar",
        kernel_samples,
        pairs.len(),
        || {
            for (a, b) in &pairs {
                std::hint::black_box(a.intersection_size_linear(std::hint::black_box(b)));
            }
        },
    );
    let adaptive = measure(
        "kernel/intersection/dense-grid/adaptive",
        kernel_samples,
        pairs.len(),
        || {
            for (a, b) in &pairs {
                std::hint::black_box(a.intersection_size(std::hint::black_box(b)));
            }
        },
    );
    deltas.push(delta("kernel/intersection/dense-grid", &packed, &scalar));
    kernels.extend([packed, scalar, adaptive]);

    // -- Kernel: verification plane sweep, fresh vs cached vs bounded -------
    eprintln!("[2/7] kernel/distance (verification sweep variants)");
    let env = ExperimentEnv::new(divisor, 0xBEEF);
    let indexes: Vec<DitsLocal> = (0..env.source_data.len())
        .map(|s| DitsLocal::build(env.dataset_nodes(s, theta), DitsLocalConfig::default()))
        .collect();
    let queries = env.query_cells(queries_n, theta);
    assert!(!queries.is_empty(), "query workload must not be empty");
    let batch_ops = indexes.len() * queries.len();

    // Query-vs-dataset pairs drawn from the real workload, so the sweep sees
    // the coordinate distributions the kNN verifier actually walks.
    let sweep_nodes = env.dataset_nodes(0, theta);
    let sweep_pairs: Vec<(&CellSet, &CellSet)> = queries
        .iter()
        .flat_map(|q| sweep_nodes.iter().step_by(7).map(move |n| (q, &n.cells)))
        .take(64)
        .collect();
    assert!(!sweep_pairs.is_empty(), "sweep workload must not be empty");
    // Exact-answer parity before timing; this pass also materialises the
    // cached sorted-coordinate state the cached/bounded kernels reuse.
    let sweep_truths: Vec<f64> = sweep_pairs
        .iter()
        .map(|(q, c)| dataset_distance_uncached(q, c))
        .collect();
    for (&(q, c), &truth) in sweep_pairs.iter().zip(&sweep_truths) {
        assert_eq!(
            dataset_distance(q, c),
            truth,
            "cached sweep diverged from the fresh-state oracle"
        );
        assert_eq!(
            dataset_distance_bounded(q, c, truth),
            truth,
            "bounded sweep diverged from the oracle at its own cutoff"
        );
    }
    let sweep_unbounded = measure(
        "kernel/distance/unbounded",
        kernel_samples,
        sweep_pairs.len(),
        || {
            for (q, c) in &sweep_pairs {
                std::hint::black_box(dataset_distance_uncached(q, std::hint::black_box(c)));
            }
        },
    );
    let sweep_cached = measure(
        "kernel/distance/cached",
        kernel_samples,
        sweep_pairs.len(),
        || {
            for (q, c) in &sweep_pairs {
                std::hint::black_box(dataset_distance(q, std::hint::black_box(c)));
            }
        },
    );
    let sweep_bounded = measure(
        "kernel/distance/bounded",
        kernel_samples,
        sweep_pairs.len(),
        || {
            for (&(q, c), &truth) in sweep_pairs.iter().zip(&sweep_truths) {
                std::hint::black_box(dataset_distance_bounded(q, std::hint::black_box(c), truth));
            }
        },
    );
    deltas.push(delta(
        "kernel/distance/cached",
        &sweep_cached,
        &sweep_unbounded,
    ));
    deltas.push(delta(
        "kernel/distance/bounded",
        &sweep_bounded,
        &sweep_unbounded,
    ));
    kernels.extend([sweep_unbounded, sweep_cached, sweep_bounded]);

    // -- Batch OJSP / CJSP over the five local indexes ----------------------
    eprintln!("[3/7] batch/ojsp + batch/cjsp (scale 1/{divisor}, {queries_n} queries)");

    for index in &indexes {
        let solo: Vec<_> = queries
            .iter()
            .map(|q| overlap_search(index, q, k))
            .collect();
        assert_eq!(
            overlap_search_batch(index, &queries, k),
            solo,
            "frontier OJSP diverged from the per-query oracle"
        );
        let config = CoverageConfig::new(k, delta_cells);
        let solo: Vec<_> = queries
            .iter()
            .map(|q| coverage_search(index, q, config))
            .collect();
        assert_eq!(
            coverage_search_batch(index, &queries, config),
            solo,
            "frontier CJSP diverged from the per-query oracle"
        );
    }

    let ojsp_per_query = measure("batch/ojsp/per-query", samples, batch_ops, || {
        for index in &indexes {
            for q in &queries {
                std::hint::black_box(overlap_search(index, q, k));
            }
        }
    });
    let ojsp_frontier = measure("batch/ojsp/frontier", samples, batch_ops, || {
        for index in &indexes {
            std::hint::black_box(overlap_search_batch(index, &queries, k));
        }
    });
    deltas.push(delta("batch/ojsp", &ojsp_frontier, &ojsp_per_query));
    kernels.extend([ojsp_per_query, ojsp_frontier]);

    let coverage_config = CoverageConfig::new(k, delta_cells);
    let cjsp_per_query = measure("batch/cjsp/per-query", samples, batch_ops, || {
        for index in &indexes {
            for q in &queries {
                std::hint::black_box(coverage_search(index, q, coverage_config));
            }
        }
    });
    let cjsp_frontier = measure("batch/cjsp/frontier", samples, batch_ops, || {
        for index in &indexes {
            std::hint::black_box(coverage_search_batch(index, &queries, coverage_config));
        }
    });
    deltas.push(delta("batch/cjsp", &cjsp_frontier, &cjsp_per_query));
    kernels.extend([cjsp_per_query, cjsp_frontier]);

    eprintln!("[4/7] knn/per-query bounded vs unbounded oracle");
    for index in &indexes {
        for q in &queries {
            assert_eq!(
                nearest_datasets(index, q, k),
                nearest_datasets_unbounded(index, q, k),
                "bounded kNN diverged from the unbounded oracle"
            );
        }
    }
    let knn_unbounded = measure("knn/per-query/unbounded", samples, batch_ops, || {
        for index in &indexes {
            for q in &queries {
                std::hint::black_box(nearest_datasets_unbounded(index, q, k));
            }
        }
    });
    let knn_bounded = measure("knn/per-query", samples, batch_ops, || {
        for index in &indexes {
            for q in &queries {
                std::hint::black_box(nearest_datasets(index, q, k));
            }
        }
    });
    deltas.push(delta("knn/per-query", &knn_bounded, &knn_unbounded));
    kernels.extend([knn_unbounded, knn_bounded]);

    // -- Engine shard modes over the full multi-source framework ------------
    eprintln!("[5/7] engine/ojsp shard modes");
    let fw = env.framework(FrameworkConfig {
        resolution: theta,
        ..FrameworkConfig::default()
    });
    let raw_queries = env.query_datasets(queries_n);
    let per_query_engine = fw.engine();
    let mut config = *per_query_engine.config();
    config.shard_mode = ShardMode::PerSourceBatch;
    let batched_engine = QueryEngine::in_process(fw.center(), fw.sources(), config);
    let ojsp_request = SearchRequest::ojsp_batch(raw_queries.clone()).k(k);
    let oracle = per_query_engine
        .run(&ojsp_request)
        .expect("in-process OJSP");
    let fast = batched_engine
        .run(&ojsp_request)
        .expect("in-process batched OJSP");
    assert_eq!(
        oracle.results, fast.results,
        "batched shard mode diverged from the per-query oracle"
    );
    let engine_per_query = measure("engine/ojsp/per-query", samples, raw_queries.len(), || {
        std::hint::black_box(per_query_engine.run(&ojsp_request).expect("OJSP"));
    });
    let engine_batched = measure(
        "engine/ojsp/per-source-batch",
        samples,
        raw_queries.len(),
        || {
            std::hint::black_box(batched_engine.run(&ojsp_request).expect("OJSP"));
        },
    );
    deltas.push(delta("engine/ojsp", &engine_batched, &engine_per_query));
    kernels.extend([engine_per_query, engine_batched]);

    // -- Transports: per-call TCP vs pooled pipelined over a loopback fleet -
    // Every source runs as its own server (real sockets, real frames); the
    // same workload is answered through one-connection-per-request TCP and
    // through the pooled transport, after asserting both match the
    // in-process oracle bit for bit.
    eprintln!("[6/7] transport/per-call vs transport/pooled (loopback fleet)");
    let servers: Vec<SourceServer> = fw
        .sources()
        .iter()
        .map(|s| SourceServer::spawn("127.0.0.1:0", s.clone()).expect("bind loopback"))
        .collect();
    let endpoints: Vec<_> = servers.iter().map(SourceServer::endpoint).collect();
    let per_call = TcpTransport::new(endpoints.clone());
    let pooled = PooledTcpTransport::new(endpoints).expect("pooled transport");
    let leaf_capacity = fw.config().leaf_capacity;
    let per_call_center =
        DataCenter::from_transport(&per_call, leaf_capacity).expect("summary poll (per-call)");
    let pooled_center =
        DataCenter::from_transport(&pooled, leaf_capacity).expect("summary poll (pooled)");
    let wire_config = *per_query_engine.config();
    let per_call_engine = QueryEngine::new(&per_call_center, &per_call, wire_config);
    let pooled_engine = QueryEngine::new(&pooled_center, &pooled, wire_config);
    let knn_request = SearchRequest::knn_batch(raw_queries.clone()).k(k);
    let mut transport = Vec::new();
    for (kind, request) in [("ojsp", &ojsp_request), ("knn", &knn_request)] {
        let truth = per_query_engine.run(request).expect("in-process oracle");
        for (deployment, engine) in [("per-call", &per_call_engine), ("pooled", &pooled_engine)] {
            let over_wire = engine.run(request).expect("federated run");
            assert_eq!(
                truth.results, over_wire.results,
                "transport/{deployment}/{kind} diverged from the in-process oracle"
            );
            assert_eq!(
                truth.comm, over_wire.comm,
                "transport/{deployment}/{kind} changed the counted protocol bytes"
            );
            let report = measure(
                &format!("transport/{deployment}/{kind}"),
                samples,
                raw_queries.len(),
                || {
                    std::hint::black_box(engine.run(request).expect("federated run"));
                },
            );
            transport.push(TransportReport::from_kernel(&report));
        }
    }
    // Drain the fleet so the run exits cleanly instead of leaking accept
    // loops; the pooled transport's connections close once its event loop
    // drops.
    drop(pooled);
    for server in servers {
        server.shutdown();
    }

    // Phase breakdown: one traced run per engine entry splits the sources'
    // time into index traversal vs. candidate verification (ROADMAP item 3's
    // "verification dominates" claim, now measured instead of asserted).
    eprintln!("[7/7] phase breakdown (traced engine runs)");
    let traced_ojsp = ojsp_request.clone().with_trace(true);
    let phases = vec![
        phase_report(
            "engine/ojsp/per-query",
            &per_query_engine.run(&traced_ojsp).expect("traced OJSP"),
        ),
        phase_report(
            "engine/ojsp/per-source-batch",
            &batched_engine.run(&traced_ojsp).expect("traced OJSP"),
        ),
        phase_report(
            "engine/cjsp/per-query",
            &per_query_engine
                .run(
                    &SearchRequest::cjsp_batch(raw_queries.clone())
                        .k(k)
                        .delta_cells(delta_cells)
                        .with_trace(true),
                )
                .expect("traced CJSP"),
        ),
        phase_report(
            "engine/knn/per-query",
            &per_query_engine
                .run(
                    &SearchRequest::knn_batch(raw_queries.clone())
                        .k(k)
                        .with_trace(true),
                )
                .expect("traced kNN"),
        ),
    ];

    Suite {
        kernels,
        deltas,
        transport,
        phases,
    }
}

// ---------------------------------------------------------------------------
// Snapshot writing
// ---------------------------------------------------------------------------

fn render_snapshot(date: &str, quick: bool, env: &EnvInfo, suite: &Suite) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    s.push_str(&format!("  \"date\": \"{}\",\n", escape_json(date)));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!(
        "  \"env\": {{\"cpus\": {}, \"profile\": \"{}\", \"git_commit\": \"{}\"}},\n",
        env.cpus,
        escape_json(env.profile),
        escape_json(&env.git_commit)
    ));
    s.push_str("  \"kernels\": [\n");
    for (i, k) in suite.kernels.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"ops_per_sec\": {:.1}, \
             \"p50_ns\": {:.1}, \"p99_ns\": {:.1}}}{}\n",
            escape_json(&k.name),
            k.iters,
            k.ops_per_sec,
            k.p50_ns,
            k.p99_ns,
            if i + 1 < suite.kernels.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"deltas\": [\n");
    for (i, d) in suite.deltas.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"new\": \"{}\", \"baseline\": \"{}\", \
             \"speedup\": {:.2}}}{}\n",
            escape_json(&d.name),
            escape_json(&d.new),
            escape_json(&d.baseline),
            d.speedup,
            if i + 1 < suite.deltas.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"transport\": [\n");
    for (i, t) in suite.transport.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"qps\": {:.1}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}}}{}\n",
            escape_json(&t.name),
            t.qps,
            t.p50_ns,
            t.p99_ns,
            if i + 1 < suite.transport.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"phases\": [\n");
    for (i, p) in suite.phases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"traversal_ns\": {}, \"verify_ns\": {}, \
             \"verify_share\": {:.4}}}{}\n",
            escape_json(&p.name),
            p.traversal_ns,
            p.verify_ns,
            p.verify_share,
            if i + 1 < suite.phases.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn escape_json(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Snapshot validation (hand-rolled JSON: the toolchain has no serde_json)
// ---------------------------------------------------------------------------

/// A parsed JSON value — just enough of the grammar for the snapshot schema.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.error("truncated utf-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| self.error("invalid utf-8"))?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| self.error("expected a number"))
    }

    fn parse(mut self) -> Result<Json, String> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing data"));
        }
        Ok(value)
    }
}

/// Validates a snapshot file against the schema; returns a short summary.
fn validate_snapshot(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let root = Parser::new(&text).parse()?;

    let version = root
        .get("schema_version")
        .and_then(Json::as_number)
        .ok_or("missing numeric schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    let date = root
        .get("date")
        .and_then(Json::as_str)
        .ok_or("missing string date")?;
    let date_ok = date.len() == 10
        && date.chars().enumerate().all(|(i, c)| {
            if i == 4 || i == 7 {
                c == '-'
            } else {
                c.is_ascii_digit()
            }
        });
    if !date_ok {
        return Err(format!("date {date:?} is not YYYY-MM-DD"));
    }
    if !matches!(root.get("quick"), Some(Json::Bool(_))) {
        return Err("missing boolean quick".into());
    }

    let env = root.get("env").ok_or("missing env object")?;
    let cpus = env
        .get("cpus")
        .and_then(Json::as_number)
        .ok_or("env missing numeric cpus")?;
    if !cpus.is_finite() || cpus < 1.0 {
        return Err(format!("env.cpus = {cpus} is not a positive CPU count"));
    }
    let profile = env
        .get("profile")
        .and_then(Json::as_str)
        .ok_or("env missing string profile")?;
    if profile != "release" && profile != "debug" {
        return Err(format!("env.profile {profile:?} is not release/debug"));
    }
    if env
        .get("git_commit")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        return Err("env missing non-empty string git_commit".into());
    }

    let kernels = root
        .get("kernels")
        .and_then(Json::as_array)
        .ok_or("missing kernels array")?;
    if kernels.is_empty() {
        return Err("kernels array is empty".into());
    }
    for (i, k) in kernels.iter().enumerate() {
        for field in ["iters", "ops_per_sec", "p50_ns", "p99_ns"] {
            let n = k
                .get(field)
                .and_then(Json::as_number)
                .ok_or(format!("kernels[{i}] missing numeric {field}"))?;
            if !n.is_finite() || n < 0.0 {
                return Err(format!(
                    "kernels[{i}].{field} = {n} is not a valid measurement"
                ));
            }
        }
        if k.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("kernels[{i}] missing string name"));
        }
    }

    let deltas = root
        .get("deltas")
        .and_then(Json::as_array)
        .ok_or("missing deltas array")?;
    if deltas.is_empty() {
        return Err("deltas array is empty".into());
    }
    let kernel_names: Vec<&str> = kernels
        .iter()
        .filter_map(|k| k.get("name").and_then(Json::as_str))
        .collect();
    for (i, d) in deltas.iter().enumerate() {
        if d.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("deltas[{i}] missing string name"));
        }
        let speedup = d
            .get("speedup")
            .and_then(Json::as_number)
            .ok_or(format!("deltas[{i}] missing numeric speedup"))?;
        if !speedup.is_finite() || speedup <= 0.0 {
            return Err(format!("deltas[{i}].speedup = {speedup} is not positive"));
        }
        for side in ["new", "baseline"] {
            let name = d
                .get(side)
                .and_then(Json::as_str)
                .ok_or(format!("deltas[{i}] missing string {side}"))?;
            if !kernel_names.contains(&name) {
                return Err(format!(
                    "deltas[{i}].{side} {name:?} names no measured kernel"
                ));
            }
        }
    }

    let transport = root
        .get("transport")
        .and_then(Json::as_array)
        .ok_or("missing transport array")?;
    if transport.is_empty() {
        return Err("transport array is empty".into());
    }
    for (i, t) in transport.iter().enumerate() {
        if t.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("transport[{i}] missing string name"));
        }
        for field in ["qps", "p50_ns", "p99_ns"] {
            let n = t
                .get(field)
                .and_then(Json::as_number)
                .ok_or(format!("transport[{i}] missing numeric {field}"))?;
            if !n.is_finite() || n <= 0.0 {
                return Err(format!(
                    "transport[{i}].{field} = {n} is not a positive measurement"
                ));
            }
        }
    }
    let transport_names: Vec<&str> = transport
        .iter()
        .filter_map(|t| t.get("name").and_then(Json::as_str))
        .collect();
    for prefix in REQUIRED_TRANSPORT_PREFIXES {
        if !transport_names.iter().any(|n| n.starts_with(prefix)) {
            return Err(format!(
                "transport section has no {prefix}* rows — both federated \
                 deployments must be measured"
            ));
        }
    }

    let phases = root
        .get("phases")
        .and_then(Json::as_array)
        .ok_or("missing phases array")?;
    if phases.is_empty() {
        return Err("phases array is empty".into());
    }
    for (i, p) in phases.iter().enumerate() {
        if p.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("phases[{i}] missing string name"));
        }
        for field in ["traversal_ns", "verify_ns"] {
            let n = p
                .get(field)
                .and_then(Json::as_number)
                .ok_or(format!("phases[{i}] missing numeric {field}"))?;
            if !n.is_finite() || n < 0.0 {
                return Err(format!(
                    "phases[{i}].{field} = {n} is not a valid measurement"
                ));
            }
        }
        let share = p
            .get("verify_share")
            .and_then(Json::as_number)
            .ok_or(format!("phases[{i}] missing numeric verify_share"))?;
        if !share.is_finite() || !(0.0..=1.0).contains(&share) {
            return Err(format!(
                "phases[{i}].verify_share = {share} is not in [0, 1]"
            ));
        }
    }
    let phase_names: Vec<&str> = phases
        .iter()
        .filter_map(|p| p.get("name").and_then(Json::as_str))
        .collect();
    for required in REQUIRED_PHASES {
        if !phase_names.contains(&required) {
            return Err(format!("phases missing required engine entry {required:?}"));
        }
    }

    Ok(format!(
        "{} kernels, {} deltas, {} transport rows, {} phases",
        kernels.len(),
        deltas.len(),
        transport.len(),
        phases.len()
    ))
}

// ---------------------------------------------------------------------------
// Civil date (no chrono in the toolchain)
// ---------------------------------------------------------------------------

/// Today's UTC date as `YYYY-MM-DD` (Howard Hinnant's `civil_from_days`).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}
