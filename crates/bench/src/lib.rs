//! Shared experiment environment used by both the `experiments` binary and
//! the criterion benches.
//!
//! The environment generates the five synthetic data sources once (at a
//! configurable scale), grids them at any requested resolution θ, builds any
//! of the five competing indexes, and selects query workloads — so every
//! figure's harness is a short sweep over this common vocabulary.

#![warn(missing_docs)]

use baselines::{JosieIndex, OverlapIndex, QuadTreeIndex, RTreeIndex, Sts3Index};
use datagen::{generate_source, paper_sources, select_queries, GeneratorConfig, SourceScale};
use dits::{DatasetNode, DitsLocal, DitsLocalConfig};
use multisource::{FrameworkConfig, MultiSourceFramework};
use spatial::{CellSet, Grid, SpatialDataset};

/// The five competing index kinds of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// The paper's DITS-L.
    Dits,
    /// QuadTree baseline.
    QuadTree,
    /// R-tree baseline.
    RTree,
    /// STS3 inverted-index baseline.
    Sts3,
    /// Josie sorted inverted-index baseline.
    Josie,
}

impl IndexKind {
    /// All five kinds in the order the paper lists them.
    pub fn all() -> [IndexKind; 5] {
        [
            IndexKind::Dits,
            IndexKind::QuadTree,
            IndexKind::RTree,
            IndexKind::Sts3,
            IndexKind::Josie,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Dits => "DITS-L",
            IndexKind::QuadTree => "QuadTree",
            IndexKind::RTree => "Rtree",
            IndexKind::Sts3 => "STS3",
            IndexKind::Josie => "Josie",
        }
    }

    /// Builds an index of this kind over the given dataset nodes.
    pub fn build(&self, nodes: Vec<DatasetNode>, leaf_capacity: usize) -> Box<dyn OverlapIndex> {
        match self {
            IndexKind::Dits => Box::new(DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity })),
            IndexKind::QuadTree => Box::new(QuadTreeIndex::build(nodes)),
            IndexKind::RTree => Box::new(RTreeIndex::build(nodes)),
            IndexKind::Sts3 => Box::new(Sts3Index::build(nodes)),
            IndexKind::Josie => Box::new(JosieIndex::build(nodes)),
        }
    }
}

/// The experiment environment: the generated sources plus query selection.
pub struct ExperimentEnv {
    /// `(portal name, datasets)` for each of the five sources.
    pub source_data: Vec<(String, Vec<SpatialDataset>)>,
    seed: u64,
}

impl ExperimentEnv {
    /// Generates the five sources at `1/divisor` of the paper's size with a
    /// fixed seed.
    pub fn new(divisor: u32, seed: u64) -> Self {
        let config = GeneratorConfig {
            scale: SourceScale::Custom(divisor),
            seed,
            max_points_per_dataset: Some(1_000),
        };
        let source_data = paper_sources()
            .iter()
            .map(|p| (p.name.to_string(), generate_source(p, &config)))
            .collect();
        Self { source_data, seed }
    }

    /// A small environment suitable for unit tests and bench smoke runs.
    pub fn small() -> Self {
        Self::new(200, 0xBEEF)
    }

    /// Total number of datasets across the five sources.
    pub fn dataset_count(&self) -> usize {
        self.source_data.iter().map(|(_, d)| d.len()).sum()
    }

    /// All raw datasets of one source by index (0 = Baidu … 4 = UMN).
    pub fn source(&self, idx: usize) -> &[SpatialDataset] {
        &self.source_data[idx].1
    }

    /// Name of one source.
    pub fn source_name(&self, idx: usize) -> &str {
        &self.source_data[idx].0
    }

    /// Grids one source's datasets at resolution θ into dataset nodes.
    pub fn dataset_nodes(&self, source_idx: usize, theta: u32) -> Vec<DatasetNode> {
        let grid = Grid::global(theta).expect("valid θ");
        self.source(source_idx)
            .iter()
            .filter_map(|d| DatasetNode::from_dataset(&grid, d).ok())
            .collect()
    }

    /// Selects `q` query datasets drawn from all sources and grids them at θ.
    pub fn query_cells(&self, q: usize, theta: u32) -> Vec<CellSet> {
        let grid = Grid::global(theta).expect("valid θ");
        self.query_datasets(q)
            .iter()
            .map(|d| CellSet::from_points(&grid, &d.points))
            .filter(|c| !c.is_empty())
            .collect()
    }

    /// Selects `q` query datasets (raw points) drawn from all sources.
    pub fn query_datasets(&self, q: usize) -> Vec<SpatialDataset> {
        let pool: Vec<SpatialDataset> = self
            .source_data
            .iter()
            .flat_map(|(_, d)| d.iter().cloned())
            .collect();
        select_queries(&pool, q, self.seed ^ 0x51)
    }

    /// Builds the full multi-source framework over the five sources.
    pub fn framework(&self, config: FrameworkConfig) -> MultiSourceFramework {
        MultiSourceFramework::build(&self.source_data, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_generates_five_sources() {
        let env = ExperimentEnv::small();
        assert_eq!(env.source_data.len(), 5);
        assert!(env.dataset_count() > 0);
        assert!(env.source_name(3).contains("Transit"));
        assert!(!env.source(3).is_empty());
    }

    #[test]
    fn all_index_kinds_build_and_answer_queries() {
        let env = ExperimentEnv::small();
        let nodes = env.dataset_nodes(3, 10);
        assert!(!nodes.is_empty());
        let queries = env.query_cells(3, 10);
        assert!(!queries.is_empty());
        let mut reference: Option<Vec<usize>> = None;
        for kind in IndexKind::all() {
            let index = kind.build(nodes.clone(), 10);
            assert_eq!(index.dataset_count(), nodes.len(), "{}", kind.name());
            assert!(index.memory_bytes() > 0);
            let results = index.overlap_search(&queries[0], 10);
            let overlaps: Vec<usize> = results.iter().map(|r| r.overlap).collect();
            match &reference {
                None => reference = Some(overlaps),
                Some(expected) => assert_eq!(&overlaps, expected, "{} disagrees", kind.name()),
            }
        }
    }

    #[test]
    fn query_selection_is_stable() {
        let env = ExperimentEnv::small();
        let a = env.query_datasets(10);
        let b = env.query_datasets(10);
        assert_eq!(a.len(), 10);
        assert_eq!(a, b);
    }
}
