//! Profiles of the five data sources of Table I.
//!
//! Each profile records the portal's name, the number of datasets, the total
//! number of points, the coordinate extent and a qualitative clustering
//! profile derived from the Fig. 7 heatmaps (how many hotspots the datasets
//! concentrate around).  The generator scales the raw counts down by a
//! [`SourceScale`] factor so the full parameter sweeps finish in minutes on
//! one machine while preserving the relative sizes of the five sources.

use serde::{Deserialize, Serialize};
use spatial::{Mbr, Point};

/// How much to shrink the paper's dataset counts for local experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SourceScale {
    /// Full Table I sizes (6 581 + 3 204 + 1 093 + 1 967 + 5 453 datasets).
    Full,
    /// One tenth of the datasets and points — the default for `cargo bench`.
    Tenth,
    /// One fiftieth — used by the unit/integration tests.
    Fiftieth,
    /// A custom divisor.
    Custom(u32),
}

impl SourceScale {
    /// The divisor applied to dataset and point counts.
    pub fn divisor(&self) -> u32 {
        match self {
            SourceScale::Full => 1,
            SourceScale::Tenth => 10,
            SourceScale::Fiftieth => 50,
            SourceScale::Custom(d) => (*d).max(1),
        }
    }
}

/// The statistical profile of one data source (one row of Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceProfile {
    /// Portal name as used in the paper ("Baidu-dataset", …).
    pub name: &'static str,
    /// Number of datasets in the portal (Table I).
    pub dataset_count: usize,
    /// Total number of points across all datasets (Table I).
    pub point_count: usize,
    /// Coordinate extent `[(lon_min, lat_min), (lon_max, lat_max)]`.
    pub extent: Mbr,
    /// Number of dense hotspots in the Fig. 7 heatmap (cities / regions the
    /// datasets cluster around).
    pub hotspots: usize,
    /// Fraction of datasets that are route-like (ordered point sequences,
    /// e.g. transit lines) rather than diffuse point clouds.
    pub route_fraction: f64,
}

impl SourceProfile {
    /// Number of datasets after applying a scale factor (at least 1).
    pub fn scaled_dataset_count(&self, scale: SourceScale) -> usize {
        (self.dataset_count / scale.divisor() as usize).max(1)
    }

    /// Average number of points per dataset (scale-independent).
    pub fn mean_points_per_dataset(&self) -> usize {
        (self.point_count / self.dataset_count).max(1)
    }
}

/// The five data-source profiles of Table I, in the paper's order.
pub fn paper_sources() -> Vec<SourceProfile> {
    vec![
        SourceProfile {
            name: "Baidu-dataset",
            dataset_count: 6_581,
            point_count: 3_710_526,
            extent: Mbr::new(Point::new(87.52, 19.98), Point::new(127.15, 46.35)),
            hotspots: 28, // 28 Chinese cities
            route_fraction: 0.2,
        },
        SourceProfile {
            name: "BTAA-dataset",
            dataset_count: 3_204,
            point_count: 96_788_280,
            extent: Mbr::new(Point::new(-179.77, -87.70), Point::new(179.99, 71.40)),
            hotspots: 12, // mid-western US states
            route_fraction: 0.3,
        },
        SourceProfile {
            name: "NYU-dataset",
            dataset_count: 1_093,
            point_count: 15_303_410,
            extent: Mbr::new(Point::new(-138.00, -74.02), Point::new(56.65, 83.15)),
            hotspots: 8,
            route_fraction: 0.25,
        },
        SourceProfile {
            name: "Transit-dataset",
            dataset_count: 1_967,
            point_count: 522_461,
            extent: Mbr::new(Point::new(-77.73, 36.81), Point::new(-74.53, 39.78)),
            hotspots: 4, // D.C., Baltimore, Annapolis, Wilmington corridors
            route_fraction: 0.85,
        },
        SourceProfile {
            name: "UMN-dataset",
            dataset_count: 5_453,
            point_count: 54_417_609,
            extent: Mbr::new(Point::new(-179.24, -14.92), Point::new(179.77, 71.58)),
            hotspots: 10,
            route_fraction: 0.3,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_sources_match_table1_counts() {
        let sources = paper_sources();
        assert_eq!(sources.len(), 5);
        let names: Vec<&str> = sources.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "Baidu-dataset",
                "BTAA-dataset",
                "NYU-dataset",
                "Transit-dataset",
                "UMN-dataset"
            ]
        );
        let total_datasets: usize = sources.iter().map(|s| s.dataset_count).sum();
        assert_eq!(total_datasets, 6_581 + 3_204 + 1_093 + 1_967 + 5_453);
        for s in &sources {
            assert!(s.extent.area() > 0.0);
            assert!(s.hotspots > 0);
            assert!((0.0..=1.0).contains(&s.route_fraction));
        }
    }

    #[test]
    fn scaling_preserves_at_least_one_dataset() {
        for s in paper_sources() {
            assert!(s.scaled_dataset_count(SourceScale::Full) == s.dataset_count);
            assert!(s.scaled_dataset_count(SourceScale::Fiftieth) >= 1);
            assert!(
                s.scaled_dataset_count(SourceScale::Tenth)
                    <= s.scaled_dataset_count(SourceScale::Full)
            );
            assert_eq!(
                s.scaled_dataset_count(SourceScale::Custom(0)),
                s.dataset_count
            );
        }
    }

    #[test]
    fn transit_is_route_dominated_and_regional() {
        let sources = paper_sources();
        let transit = &sources[3];
        assert!(transit.route_fraction > 0.5);
        // Transit covers a small region (Maryland + D.C.), unlike BTAA/UMN.
        assert!(transit.extent.width() < 10.0);
        let btaa = &sources[1];
        assert!(btaa.extent.width() > 300.0);
    }

    #[test]
    fn mean_points_per_dataset_is_sane() {
        for s in paper_sources() {
            let m = s.mean_points_per_dataset();
            assert!(m >= 1);
            assert!(m <= s.point_count);
        }
    }
}
