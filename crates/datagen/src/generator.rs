//! Synthetic dataset generation.
//!
//! Each data source is generated as a mixture of:
//!
//! * **route datasets** — ordered point sequences produced by a random walk
//!   from a hotspot (modelling bus/metro/waterway lines, the dominant shape
//!   in the Transit portal and the motivating example of the paper), and
//! * **cluster datasets** — Gaussian point clouds around a hotspot
//!   (modelling census tracts, POI extracts, land-cover samples).
//!
//! Hotspot centres are themselves drawn inside the source's extent, giving
//! the multi-modal density visible in the Fig. 7 heatmaps.  Every value is
//! drawn from a seeded [`StdRng`], so a `(profile, seed, scale)` triple
//! always produces the same source.

use crate::sources::{SourceProfile, SourceScale};
use rand::prelude::*;
use rand::rngs::StdRng;
use spatial::{Mbr, Point, SpatialDataset};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Scale factor applied to the profile's dataset/point counts.
    pub scale: SourceScale,
    /// RNG seed; the same seed always regenerates the same source.
    pub seed: u64,
    /// Cap on the number of points per dataset (keeps the heaviest BTAA/UMN
    /// datasets tractable); `None` keeps the profile's natural sizes.
    pub max_points_per_dataset: Option<usize>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            scale: SourceScale::Tenth,
            seed: 0x5EED_CAFE,
            max_points_per_dataset: Some(2_000),
        }
    }
}

/// Generates all datasets of one data source according to its profile.
pub fn generate_source(profile: &SourceProfile, config: &GeneratorConfig) -> Vec<SpatialDataset> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ hash_name(profile.name));
    let dataset_count = profile.scaled_dataset_count(config.scale);
    let mean_points = profile.mean_points_per_dataset();

    // Hotspot centres with individual spreads: a fraction of the extent.
    let hotspots: Vec<(Point, f64)> = (0..profile.hotspots.max(1))
        .map(|_| {
            let c = random_point_in(&profile.extent, &mut rng);
            // Keep hotspots tight relative to the extent: real portal
            // datasets (routes, tracts, POI extracts) are local, and the
            // clustered-not-uniform shape of Fig. 7 depends on it.
            let spread = 0.004 + 0.02 * rng.random::<f64>();
            let spread = spread
                * profile
                    .extent
                    .width()
                    .min(profile.extent.height())
                    .max(1e-6);
            (c, spread)
        })
        .collect();

    (0..dataset_count)
        .map(|i| {
            let (center, spread) = hotspots[rng.random_range(0..hotspots.len())];
            // Log-normal-ish size distribution around the profile mean.
            let factor = (rng.random::<f64>() * 2.0).exp() / std::f64::consts::E;
            let mut size = ((mean_points as f64) * factor).round() as usize;
            size = size.clamp(2, config.max_points_per_dataset.unwrap_or(usize::MAX));
            let points = if rng.random::<f64>() < profile.route_fraction {
                generate_route(center, spread, size, &profile.extent, &mut rng)
            } else {
                generate_cluster(center, spread, size, &profile.extent, &mut rng)
            };
            SpatialDataset::named(i as u32, format!("{}-{i}", profile.name), points)
        })
        .collect()
}

/// A route-like dataset: a random walk starting near a hotspot.
fn generate_route(
    center: Point,
    spread: f64,
    size: usize,
    extent: &Mbr,
    rng: &mut StdRng,
) -> Vec<Point> {
    let mut points = Vec::with_capacity(size);
    let mut x = center.x + gaussian(rng) * spread;
    let mut y = center.y + gaussian(rng) * spread;
    // Persistent heading with small perturbations makes line-shaped routes.
    let mut heading = rng.random::<f64>() * std::f64::consts::TAU;
    let step = (spread * 0.2).max(1e-4);
    for _ in 0..size {
        points.push(clamp_point(Point::new(x, y), extent));
        heading += gaussian(rng) * 0.3;
        x += heading.cos() * step * (0.5 + rng.random::<f64>());
        y += heading.sin() * step * (0.5 + rng.random::<f64>());
    }
    points
}

/// A cluster dataset: a Gaussian cloud around the hotspot.
fn generate_cluster(
    center: Point,
    spread: f64,
    size: usize,
    extent: &Mbr,
    rng: &mut StdRng,
) -> Vec<Point> {
    (0..size)
        .map(|_| {
            clamp_point(
                Point::new(
                    center.x + gaussian(rng) * spread,
                    center.y + gaussian(rng) * spread,
                ),
                extent,
            )
        })
        .collect()
}

/// Samples a standard normal with the Box–Muller transform (avoids pulling in
/// `rand_distr` just for one distribution).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn random_point_in(extent: &Mbr, rng: &mut StdRng) -> Point {
    Point::new(
        extent.min.x + rng.random::<f64>() * extent.width(),
        extent.min.y + rng.random::<f64>() * extent.height(),
    )
}

fn clamp_point(p: Point, extent: &Mbr) -> Point {
    Point::new(
        p.x.clamp(extent.min.x, extent.max.x),
        p.y.clamp(extent.min.y, extent.max.y),
    )
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, good enough to decorrelate the per-source RNG streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::paper_sources;
    use spatial::SourceStats;

    fn small_config() -> GeneratorConfig {
        GeneratorConfig {
            scale: SourceScale::Custom(100),
            seed: 7,
            max_points_per_dataset: Some(200),
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let profile = &paper_sources()[3];
        let a = generate_source(profile, &small_config());
        let b = generate_source(profile, &small_config());
        assert_eq!(a, b);
        let c = generate_source(
            profile,
            &GeneratorConfig {
                seed: 8,
                ..small_config()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn dataset_counts_follow_the_scaled_profile() {
        for profile in paper_sources() {
            let datasets = generate_source(&profile, &small_config());
            assert_eq!(
                datasets.len(),
                profile.scaled_dataset_count(SourceScale::Custom(100))
            );
            for d in &datasets {
                assert!(d.len() >= 2);
                assert!(d.len() <= 200);
            }
        }
    }

    #[test]
    fn points_stay_inside_the_extent() {
        for profile in paper_sources() {
            let datasets = generate_source(&profile, &small_config());
            for d in &datasets {
                for p in &d.points {
                    assert!(
                        profile.extent.contains_point(p),
                        "{} point {:?} outside {:?}",
                        profile.name,
                        p,
                        profile.extent
                    );
                }
            }
        }
    }

    #[test]
    fn sources_are_spatially_clustered_not_uniform() {
        // With hotspot-driven generation, the occupied area should be a small
        // fraction of the extent for region-wide portals such as BTAA.
        let profile = &paper_sources()[1];
        let datasets = generate_source(profile, &small_config());
        let stats = SourceStats::compute(profile.name, &datasets);
        let occupied = stats.extent.unwrap();
        // Dataset MBRs individually should be much smaller than the source
        // extent (routes and clusters are local).
        let mut small = 0usize;
        for d in &datasets {
            if let Some(m) = d.mbr() {
                if m.area() < 0.01 * occupied.area().max(1e-9) {
                    small += 1;
                }
            }
        }
        assert!(
            small * 2 > datasets.len(),
            "most datasets should be local: {small}/{}",
            datasets.len()
        );
    }

    #[test]
    fn route_datasets_look_like_lines() {
        // Generate the Transit source (85% routes) and check that dataset
        // MBRs are elongated or thin rather than square blobs on average.
        let profile = &paper_sources()[3];
        let datasets = generate_source(profile, &small_config());
        let mut elongated = 0usize;
        let mut measured = 0usize;
        for d in &datasets {
            if let Some(m) = d.mbr() {
                if m.width() > 0.0 && m.height() > 0.0 {
                    measured += 1;
                    let ratio = (m.width() / m.height()).max(m.height() / m.width());
                    if ratio > 1.5 {
                        elongated += 1;
                    }
                }
            }
        }
        assert!(measured > 0);
        assert!(
            elongated * 3 > measured,
            "expected a visible fraction of elongated routes: {elongated}/{measured}"
        );
    }
}
