//! Query workloads and the Table II parameter grid.
//!
//! The paper evaluates with 50 query datasets selected at random from the
//! downloaded datasets and sweeps five parameters, one at a time, keeping
//! the others at their defaults (the underlined values of Table II):
//! `k ∈ {10..50}` (default 10), `q ∈ {10..50}` (10), `θ ∈ {10..14}` (12),
//! `δ ∈ {0..20}` (10) and `f ∈ {10..50}` (10).

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use spatial::SpatialDataset;

/// The Table II parameter grid with the paper's default values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterGrid {
    /// Number of results `k`.
    pub k_values: Vec<usize>,
    /// Number of queries `q`.
    pub q_values: Vec<usize>,
    /// Grid resolutions θ.
    pub theta_values: Vec<u32>,
    /// Connectivity thresholds δ (in cells).
    pub delta_values: Vec<f64>,
    /// Leaf capacities `f`.
    pub f_values: Vec<usize>,
    /// Default `k`.
    pub default_k: usize,
    /// Default `q`.
    pub default_q: usize,
    /// Default θ.
    pub default_theta: u32,
    /// Default δ.
    pub default_delta: f64,
    /// Default `f`.
    pub default_f: usize,
}

impl Default for ParameterGrid {
    fn default() -> Self {
        Self::paper()
    }
}

impl ParameterGrid {
    /// The exact grid of Table II.
    pub fn paper() -> Self {
        Self {
            k_values: vec![10, 20, 30, 40, 50],
            q_values: vec![10, 20, 30, 40, 50],
            theta_values: vec![10, 11, 12, 13, 14],
            delta_values: vec![0.0, 5.0, 10.0, 15.0, 20.0],
            f_values: vec![10, 20, 30, 40, 50],
            default_k: 10,
            default_q: 10,
            default_theta: 12,
            default_delta: 10.0,
            default_f: 10,
        }
    }

    /// A reduced grid for quick smoke runs of the experiment harness.
    pub fn quick() -> Self {
        Self {
            k_values: vec![10, 30, 50],
            q_values: vec![10, 30, 50],
            theta_values: vec![10, 12, 14],
            delta_values: vec![0.0, 10.0, 20.0],
            f_values: vec![10, 30, 50],
            ..Self::paper()
        }
    }
}

/// Selects `q` query datasets uniformly at random (without replacement when
/// possible) from a pool of datasets, reproducing the paper's
/// "randomly select 50 datasets as the query datasets" setup.
pub fn select_queries(pool: &[SpatialDataset], q: usize, seed: u64) -> Vec<SpatialDataset> {
    if pool.is_empty() || q == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..pool.len()).collect();
    indices.shuffle(&mut rng);
    indices
        .into_iter()
        .cycle()
        .take(q)
        .map(|i| pool[i].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial::Point;

    fn pool(n: usize) -> Vec<SpatialDataset> {
        (0..n)
            .map(|i| SpatialDataset::new(i as u32, vec![Point::new(i as f64, i as f64)]))
            .collect()
    }

    #[test]
    fn paper_grid_matches_table2() {
        let grid = ParameterGrid::paper();
        assert_eq!(grid.k_values, vec![10, 20, 30, 40, 50]);
        assert_eq!(grid.theta_values, vec![10, 11, 12, 13, 14]);
        assert_eq!(grid.delta_values, vec![0.0, 5.0, 10.0, 15.0, 20.0]);
        assert_eq!(grid.f_values, vec![10, 20, 30, 40, 50]);
        assert_eq!(grid.default_k, 10);
        assert_eq!(grid.default_theta, 12);
        assert_eq!(grid.default_delta, 10.0);
        assert_eq!(grid.default_f, 10);
        assert_eq!(ParameterGrid::default(), ParameterGrid::paper());
        assert!(ParameterGrid::quick().k_values.len() < grid.k_values.len());
    }

    #[test]
    fn query_selection_is_deterministic_and_without_replacement() {
        let pool = pool(100);
        let a = select_queries(&pool, 50, 1);
        let b = select_queries(&pool, 50, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let mut ids: Vec<u32> = a.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50, "queries drawn without replacement");
        let c = select_queries(&pool, 50, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn small_pools_cycle_instead_of_failing() {
        let pool = pool(3);
        let q = select_queries(&pool, 10, 0);
        assert_eq!(q.len(), 10);
        assert!(select_queries(&[], 10, 0).is_empty());
        assert!(select_queries(&pool, 0, 0).is_empty());
    }
}
