//! Synthetic multi-source spatial data generation.
//!
//! The paper evaluates on five real open-data portals (Table I): Baidu,
//! BTAA, NYU, Transit and UMN.  Those archives are not redistributable with
//! this repository, so this crate synthesises five data sources whose
//! *statistics that matter to the algorithms* match the paper: number of
//! datasets, points per dataset, coordinate extent, and the clustered,
//! route-like spatial distribution visible in the Fig. 7 heatmaps.  All
//! generation is deterministic given a seed, so every experiment is
//! reproducible bit-for-bit.
//!
//! The crate also provides the query workloads and parameter grid of
//! Table II.

#![warn(missing_docs)]

pub mod generator;
pub mod sources;
pub mod workload;

pub use generator::{generate_source, GeneratorConfig};
pub use sources::{paper_sources, SourceProfile, SourceScale};
pub use workload::{select_queries, ParameterGrid};
