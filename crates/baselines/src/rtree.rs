//! R-tree baseline \[27\]: a Guttman R-tree over dataset MBRs.
//!
//! Construction bulk-loads the datasets with the Sort-Tile-Recursive (STR)
//! packing, the standard way to build a balanced R-tree over a static
//! collection; maintenance uses ChooseLeaf by minimum enlargement and the
//! quadratic split.  OJSP with the R-tree finds every dataset whose MBR
//! intersects the query MBR and computes its exact cell intersection — the
//! paper's second-best strategy, since the MBR filter is coarser than the
//! leaf inverted-index bounds DITS-L adds on top of its tree.

use crate::traits::OverlapIndex;
use dits::{DatasetNode, OverlapResult};
use spatial::{CellSet, DatasetId, Mbr, Point};

/// Maximum number of entries per node before it splits.
const MAX_ENTRIES: usize = 16;

#[derive(Debug, Clone)]
enum RNode {
    Leaf { mbr: Mbr, entries: Vec<DatasetNode> },
    Internal { mbr: Mbr, children: Vec<usize> },
}

impl RNode {
    fn mbr(&self) -> Mbr {
        match self {
            RNode::Leaf { mbr, .. } | RNode::Internal { mbr, .. } => *mbr,
        }
    }
}

/// The R-tree baseline index.
#[derive(Debug, Clone)]
pub struct RTreeIndex {
    nodes: Vec<RNode>,
    root: usize,
    dataset_count: usize,
}

impl Default for RTreeIndex {
    fn default() -> Self {
        Self {
            nodes: vec![RNode::Leaf {
                mbr: empty_mbr(),
                entries: Vec::new(),
            }],
            root: 0,
            dataset_count: 0,
        }
    }
}

fn empty_mbr() -> Mbr {
    Mbr::new(Point::new(0.0, 0.0), Point::new(0.0, 0.0))
}

fn mbr_of_entries(entries: &[DatasetNode]) -> Mbr {
    entries
        .iter()
        .map(|e| *e.rect())
        .reduce(|a, b| a.union(&b))
        .unwrap_or_else(empty_mbr)
}

impl RTreeIndex {
    /// Bulk-loads the R-tree with Sort-Tile-Recursive packing.
    pub fn build(mut datasets: Vec<DatasetNode>) -> Self {
        if datasets.is_empty() {
            return Self::default();
        }
        let dataset_count = datasets.len();
        let mut tree = Self {
            nodes: Vec::new(),
            root: 0,
            dataset_count,
        };

        // STR: sort by x, slice into vertical strips of ~sqrt(n/M) strips,
        // sort each strip by y and pack runs of MAX_ENTRIES into leaves.
        let n = datasets.len();
        let leaf_count = n.div_ceil(MAX_ENTRIES);
        let strip_count = (leaf_count as f64).sqrt().ceil() as usize;
        let per_strip = n.div_ceil(strip_count.max(1));
        datasets.sort_unstable_by(|a, b| a.pivot().x.total_cmp(&b.pivot().x));
        let mut leaves: Vec<usize> = Vec::new();
        for strip in datasets.chunks(per_strip.max(1)) {
            let mut strip: Vec<DatasetNode> = strip.to_vec();
            strip.sort_unstable_by(|a, b| a.pivot().y.total_cmp(&b.pivot().y));
            for chunk in strip.chunks(MAX_ENTRIES) {
                let entries = chunk.to_vec();
                let mbr = mbr_of_entries(&entries);
                tree.nodes.push(RNode::Leaf { mbr, entries });
                leaves.push(tree.nodes.len() - 1);
            }
        }
        // Pack upper levels until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::new();
            for chunk in level.chunks(MAX_ENTRIES) {
                let children = chunk.to_vec();
                let mbr = children
                    .iter()
                    .map(|&c| tree.nodes[c].mbr())
                    .reduce(|a, b| a.union(&b))
                    .unwrap_or_else(empty_mbr);
                tree.nodes.push(RNode::Internal { mbr, children });
                next.push(tree.nodes.len() - 1);
            }
            level = next;
        }
        tree.root = level[0];
        tree
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn refresh_mbr(&mut self, idx: usize) -> Mbr {
        let mbr = match &self.nodes[idx] {
            RNode::Leaf { entries, .. } => mbr_of_entries(entries),
            RNode::Internal { children, .. } => children
                .iter()
                .map(|&c| self.nodes[c].mbr())
                .reduce(|a, b| a.union(&b))
                .unwrap_or_else(empty_mbr),
        };
        match &mut self.nodes[idx] {
            RNode::Leaf { mbr: m, .. } | RNode::Internal { mbr: m, .. } => *m = mbr,
        }
        mbr
    }

    /// ChooseLeaf: descend picking the child needing the least enlargement.
    fn choose_leaf(&self, rect: &Mbr) -> Vec<usize> {
        let mut path = vec![self.root];
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                RNode::Leaf { .. } => return path,
                RNode::Internal { children, .. } => {
                    let best = children
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            let ea = self.nodes[a].mbr().enlargement(rect);
                            let eb = self.nodes[b].mbr().enlargement(rect);
                            ea.total_cmp(&eb).then_with(|| {
                                self.nodes[a]
                                    .mbr()
                                    .area()
                                    .total_cmp(&self.nodes[b].mbr().area())
                            })
                        })
                        .expect("internal node has children");
                    path.push(best);
                    idx = best;
                }
            }
        }
    }

    /// Quadratic split of an over-full leaf; returns the new sibling index.
    fn split_leaf(&mut self, idx: usize) -> usize {
        let mut entries = match &mut self.nodes[idx] {
            RNode::Leaf { entries, .. } => std::mem::take(entries),
            RNode::Internal { .. } => unreachable!("split_leaf on internal node"),
        };
        // Pick the pair of seeds wasting the most area together.
        let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::MIN);
        for i in 0..entries.len() {
            for j in (i + 1)..entries.len() {
                let waste = entries[i].rect().union(entries[j].rect()).area()
                    - entries[i].rect().area()
                    - entries[j].rect().area();
                if waste > worst {
                    worst = waste;
                    seed_a = i;
                    seed_b = j;
                }
            }
        }
        let b = entries.remove(seed_b.max(seed_a));
        let a = entries.remove(seed_b.min(seed_a));
        let mut group_a = vec![a];
        let mut group_b = vec![b];
        for entry in entries {
            let mbr_a = mbr_of_entries(&group_a);
            let mbr_b = mbr_of_entries(&group_b);
            let grow_a = mbr_a.enlargement(entry.rect());
            let grow_b = mbr_b.enlargement(entry.rect());
            if grow_a < grow_b || (grow_a == grow_b && group_a.len() <= group_b.len()) {
                group_a.push(entry);
            } else {
                group_b.push(entry);
            }
        }
        let mbr_a = mbr_of_entries(&group_a);
        let mbr_b = mbr_of_entries(&group_b);
        self.nodes[idx] = RNode::Leaf {
            mbr: mbr_a,
            entries: group_a,
        };
        self.nodes.push(RNode::Leaf {
            mbr: mbr_b,
            entries: group_b,
        });
        self.nodes.len() - 1
    }

    fn find_leaf_of(&self, id: DatasetId) -> Option<usize> {
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            match &self.nodes[idx] {
                RNode::Leaf { entries, .. } => {
                    if entries.iter().any(|e| e.id == id) {
                        return Some(idx);
                    }
                }
                RNode::Internal { children, .. } => stack.extend_from_slice(children),
            }
        }
        None
    }

    fn refresh_all_mbrs(&mut self) {
        self.refresh_mbrs_from(self.root);
    }

    fn refresh_mbrs_from(&mut self, idx: usize) -> Mbr {
        let mbr = match self.nodes[idx].clone() {
            RNode::Leaf { entries, .. } => mbr_of_entries(&entries),
            RNode::Internal { children, .. } => children
                .iter()
                .map(|&c| self.refresh_mbrs_from(c))
                .reduce(|a, b| a.union(&b))
                .unwrap_or_else(empty_mbr),
        };
        match &mut self.nodes[idx] {
            RNode::Leaf { mbr: m, .. } | RNode::Internal { mbr: m, .. } => *m = mbr,
        }
        mbr
    }

    /// Every dataset node whose MBR intersects the query rectangle.
    fn intersecting_datasets(&self, rect: &Mbr) -> Vec<&DatasetNode> {
        let mut out = Vec::new();
        if self.dataset_count == 0 {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            match &self.nodes[idx] {
                RNode::Leaf { mbr, entries } => {
                    if mbr.intersects(rect) {
                        out.extend(entries.iter().filter(|e| e.rect().intersects(rect)));
                    }
                }
                RNode::Internal { mbr, children } => {
                    if mbr.intersects(rect) {
                        stack.extend_from_slice(children);
                    }
                }
            }
        }
        out
    }
}

impl OverlapIndex for RTreeIndex {
    fn name(&self) -> &'static str {
        "Rtree"
    }

    fn dataset_count(&self) -> usize {
        self.dataset_count
    }

    fn memory_bytes(&self) -> usize {
        let node_bytes = self.nodes.capacity() * std::mem::size_of::<RNode>();
        let content: usize = self
            .nodes
            .iter()
            .map(|n| match n {
                RNode::Leaf { entries, .. } => {
                    entries.iter().map(|e| e.memory_bytes()).sum::<usize>()
                }
                RNode::Internal { children, .. } => {
                    children.capacity() * std::mem::size_of::<usize>()
                }
            })
            .sum();
        node_bytes + content
    }

    fn overlap_search(&self, query: &CellSet, k: usize) -> Vec<OverlapResult> {
        if k == 0 || query.is_empty() {
            return Vec::new();
        }
        let Some(query_rect) = query.mbr_cell_space() else {
            return Vec::new();
        };
        // MBR filtering finds the candidates; one batched intersection pass
        // scores them all against the query's cached packed representation.
        let candidates = self.intersecting_datasets(&query_rect);
        let overlaps = query.intersection_size_many(candidates.iter().map(|d| &d.cells));
        let mut results: Vec<OverlapResult> = candidates
            .into_iter()
            .zip(overlaps)
            .map(|(d, overlap)| OverlapResult {
                dataset: d.id,
                overlap,
            })
            .filter(|r| r.overlap > 0)
            .collect();
        results.sort_unstable_by(|a, b| b.overlap.cmp(&a.overlap).then(a.dataset.cmp(&b.dataset)));
        results.truncate(k);
        results
    }

    fn insert(&mut self, node: DatasetNode) -> bool {
        if self.find_leaf_of(node.id).is_some() {
            return false;
        }
        let rect = *node.rect();
        let path = self.choose_leaf(&rect);
        let leaf = *path.last().expect("choose_leaf returns a non-empty path");
        let needs_split = {
            let n = &mut self.nodes[leaf];
            if let RNode::Leaf { entries, mbr } = n {
                entries.push(node);
                *mbr = mbr_of_entries(entries);
                entries.len() > MAX_ENTRIES
            } else {
                unreachable!("choose_leaf returned an internal node")
            }
        };
        if needs_split {
            let sibling = self.split_leaf(leaf);
            // Attach the sibling to the parent (or grow a new root).
            if path.len() >= 2 {
                let parent = path[path.len() - 2];
                if let RNode::Internal { children, .. } = &mut self.nodes[parent] {
                    children.push(sibling);
                }
            } else {
                let old_root = self.root;
                let mbr = self.nodes[old_root].mbr().union(&self.nodes[sibling].mbr());
                self.nodes.push(RNode::Internal {
                    mbr,
                    children: vec![old_root, sibling],
                });
                self.root = self.nodes.len() - 1;
            }
        }
        // Refresh ancestor MBRs along the insertion path (simple and safe:
        // recompute bottom-up over the whole path).
        for &idx in path.iter().rev() {
            self.refresh_mbr(idx);
        }
        self.refresh_mbr(self.root);
        self.dataset_count += 1;
        true
    }

    fn update(&mut self, node: DatasetNode) -> bool {
        let Some(leaf) = self.find_leaf_of(node.id) else {
            return false;
        };
        if let RNode::Leaf { entries, mbr } = &mut self.nodes[leaf] {
            if let Some(pos) = entries.iter().position(|e| e.id == node.id) {
                entries[pos] = node;
                *mbr = mbr_of_entries(entries);
            }
        }
        self.refresh_all_mbrs();
        true
    }

    fn delete(&mut self, id: DatasetId) -> bool {
        let Some(leaf) = self.find_leaf_of(id) else {
            return false;
        };
        if let RNode::Leaf { entries, mbr } = &mut self.nodes[leaf] {
            entries.retain(|e| e.id != id);
            *mbr = mbr_of_entries(entries);
        }
        self.refresh_all_mbrs();
        self.dataset_count -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dits::overlap::overlap_search_bruteforce;
    use proptest::prelude::*;
    use spatial::zorder::cell_id;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn cs(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    fn scattered(n: u32) -> Vec<DatasetNode> {
        (0..n)
            .map(|i| {
                let x = (i * 7) % 120;
                let y = (i * 13) % 120;
                node(i, &[(x, y), (x + 1, y), (x, y + 1)])
            })
            .collect()
    }

    #[test]
    fn str_bulk_load_builds_multilevel_tree() {
        let tree = RTreeIndex::build(scattered(300));
        assert_eq!(tree.dataset_count(), 300);
        assert!(tree.node_count() > 300 / MAX_ENTRIES);
        assert!(tree.memory_bytes() > 0);
    }

    #[test]
    fn overlap_search_is_exact() {
        let nodes = scattered(200);
        let tree = RTreeIndex::build(nodes.clone());
        let query = cs(&[(14, 26), (15, 26), (14, 27), (70, 70)]);
        for k in [1usize, 5, 50] {
            let got = tree.overlap_search(&query, k);
            let expected = overlap_search_bruteforce(&nodes, &query, k);
            assert_eq!(
                got.iter().map(|r| r.overlap).collect::<Vec<_>>(),
                expected.iter().map(|r| r.overlap).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn insert_grows_and_splits() {
        let mut tree = RTreeIndex::default();
        for n in scattered(100) {
            assert!(tree.insert(n));
        }
        assert_eq!(tree.dataset_count(), 100);
        assert!(!tree.insert(node(5, &[(0, 0)])));
        let query = cs(&[(35, 65), (36, 65)]);
        let got = tree.overlap_search(&query, 10);
        let expected = overlap_search_bruteforce(&scattered(100), &query, 10);
        assert_eq!(
            got.iter().map(|r| r.overlap).collect::<Vec<_>>(),
            expected.iter().map(|r| r.overlap).collect::<Vec<_>>()
        );
    }

    #[test]
    fn update_and_delete() {
        let mut tree = RTreeIndex::build(scattered(50));
        assert!(tree.update(node(3, &[(200, 200), (201, 200)])));
        assert!(!tree.update(node(999, &[(1, 1)])));
        let got = tree.overlap_search(&cs(&[(200, 200)]), 3);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].dataset, 3);
        assert!(tree.delete(3));
        assert!(!tree.delete(3));
        assert_eq!(tree.dataset_count(), 49);
        assert!(tree.overlap_search(&cs(&[(200, 200)]), 3).is_empty());
    }

    #[test]
    fn empty_cases() {
        let tree = RTreeIndex::default();
        assert_eq!(tree.dataset_count(), 0);
        assert!(tree.overlap_search(&cs(&[(0, 0)]), 3).is_empty());
        let tree = RTreeIndex::build(vec![node(0, &[(0, 0)])]);
        assert!(tree.overlap_search(&CellSet::new(), 3).is_empty());
        assert!(tree.overlap_search(&cs(&[(0, 0)]), 0).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_bruteforce_after_mixed_construction(
            bulk in proptest::collection::vec(
                proptest::collection::vec((0u32..48, 0u32..48), 1..8), 0..30),
            inserted in proptest::collection::vec(
                proptest::collection::vec((0u32..48, 0u32..48), 1..8), 0..15),
            query in proptest::collection::vec((0u32..48, 0u32..48), 1..10),
            k in 1usize..8,
        ) {
            let bulk_nodes: Vec<DatasetNode> = bulk
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let insert_nodes: Vec<DatasetNode> = inserted
                .iter()
                .enumerate()
                .map(|(i, c)| node((1000 + i) as DatasetId, c))
                .collect();
            let mut tree = RTreeIndex::build(bulk_nodes.clone());
            for n in insert_nodes.clone() {
                tree.insert(n);
            }
            let mut all = bulk_nodes;
            all.extend(insert_nodes);
            let q = cs(&query);
            let got = tree.overlap_search(&q, k);
            let expected = overlap_search_bruteforce(&all, &q, k);
            prop_assert_eq!(
                got.iter().map(|r| r.overlap).collect::<Vec<_>>(),
                expected.iter().map(|r| r.overlap).collect::<Vec<_>>()
            );
        }
    }
}
