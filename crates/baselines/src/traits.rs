//! The common interface implemented by every overlap-search index so the
//! experiment harness can run the same parameter sweeps over all of them
//! (Figs. 8–12, 21–22).

use dits::{DatasetNode, DitsLocal, OverlapResult};
use spatial::{CellSet, DatasetId};

/// An index over the datasets of one data source that can answer the
/// Overlap Joinable Search Problem and be maintained incrementally.
pub trait OverlapIndex {
    /// Short name used in experiment output ("DITS-L", "Rtree", …).
    fn name(&self) -> &'static str;

    /// Number of datasets currently indexed.
    fn dataset_count(&self) -> usize;

    /// Estimated heap memory of the index in bytes (Fig. 8 right).
    fn memory_bytes(&self) -> usize;

    /// Exact top-`k` overlap search: up to `k` datasets with the largest
    /// positive `|S_Q ∩ S_D|`, sorted by decreasing overlap.
    fn overlap_search(&self, query: &CellSet, k: usize) -> Vec<OverlapResult>;

    /// Inserts a new dataset. Returns `false` when the id already exists.
    fn insert(&mut self, node: DatasetNode) -> bool;

    /// Replaces the dataset with `node.id`. Returns `false` when unknown.
    fn update(&mut self, node: DatasetNode) -> bool;

    /// Deletes a dataset by id. Returns `false` when unknown.
    fn delete(&mut self, id: DatasetId) -> bool;
}

impl OverlapIndex for DitsLocal {
    fn name(&self) -> &'static str {
        "DITS-L"
    }

    fn dataset_count(&self) -> usize {
        DitsLocal::dataset_count(self)
    }

    fn memory_bytes(&self) -> usize {
        DitsLocal::memory_bytes(self)
    }

    fn overlap_search(&self, query: &CellSet, k: usize) -> Vec<OverlapResult> {
        dits::overlap_search(self, query, k).0
    }

    fn insert(&mut self, node: DatasetNode) -> bool {
        DitsLocal::insert(self, node)
    }

    fn update(&mut self, node: DatasetNode) -> bool {
        DitsLocal::update(self, node)
    }

    fn delete(&mut self, id: DatasetId) -> bool {
        DitsLocal::delete(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dits::DitsLocalConfig;
    use spatial::zorder::cell_id;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    #[test]
    fn dits_local_implements_the_trait() {
        let mut idx: Box<dyn OverlapIndex> = Box::new(DitsLocal::build(
            vec![node(0, &[(0, 0), (1, 0)]), node(1, &[(5, 5)])],
            DitsLocalConfig::default(),
        ));
        assert_eq!(idx.name(), "DITS-L");
        assert_eq!(idx.dataset_count(), 2);
        assert!(idx.memory_bytes() > 0);
        let query = CellSet::from_cells([cell_id(0, 0)]);
        let results = idx.overlap_search(&query, 5);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].dataset, 0);
        assert!(idx.insert(node(2, &[(9, 9)])));
        assert!(idx.update(node(2, &[(8, 8)])));
        assert!(idx.delete(2));
        assert_eq!(idx.dataset_count(), 2);
    }
}
