//! Baseline indexes and search algorithms used in the paper's evaluation
//! (Section VII): everything DITS is compared against, implemented from
//! scratch so every experiment can be regenerated.
//!
//! * [`QuadTreeIndex`] — a region quadtree over the cell IDs of all datasets
//!   (Gargantini-style, leaf capacity 4), reference \[26\].
//! * [`RTreeIndex`] — a Guttman R-tree over dataset MBRs with quadratic
//!   split insertion and an STR bulk-load, reference \[27\].
//! * [`Sts3Index`] — the STS3 cell inverted index of Peng et al. \[39\].
//! * [`JosieIndex`] — Zhu et al.'s sorted inverted index with prefix-filter
//!   early termination \[73\], applied to cell-ID sets.
//! * [`greedy`] — the standard greedy algorithm (SG) for the coverage
//!   joinable search and the SG+DITS hybrid.
//! * [`OverlapIndex`] — the common trait all overlap-search indexes
//!   implement so the benchmark harness can sweep them uniformly; it is also
//!   implemented for [`dits::DitsLocal`].

#![warn(missing_docs)]

pub mod greedy;
pub mod josie;
pub mod quadtree;
pub mod rtree;
pub mod sts3;
pub mod traits;

pub use greedy::{sg_coverage_search, sg_dits_coverage_search};
pub use josie::JosieIndex;
pub use quadtree::QuadTreeIndex;
pub use rtree::RTreeIndex;
pub use sts3::Sts3Index;
pub use traits::OverlapIndex;
