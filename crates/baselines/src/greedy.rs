//! Greedy baselines for the Coverage Joinable Search Problem (Section VII-D).
//!
//! * **SG** — the standard greedy algorithm for maximum coverage \[30\]
//!   extended with the paper's connectivity constraint: every iteration scans
//!   *all* datasets of the source, keeps those directly connected to any
//!   member of the current result set (query included) and adds the one with
//!   the largest marginal gain.  No index, no bounds: the `O(|R|·n)` per
//!   iteration cost the paper reports.
//! * **SG+DITS** — the same greedy but using DITS-L (with the Lemma 4 bounds)
//!   to find the connected candidates of each result member, i.e.
//!   [`dits::coverage_search`] with the spatial-merge strategy disabled.

use dits::{coverage_search, CoverageConfig, CoverageResult, DatasetNode, DitsLocal, SearchStats};
use spatial::distance::NeighborProbe;
use spatial::CellSet;
use std::collections::HashSet;

/// Runs the standard greedy (SG) coverage search over a flat list of
/// dataset nodes.
pub fn sg_coverage_search(
    datasets: &[DatasetNode],
    query: &CellSet,
    k: usize,
    delta: f64,
) -> (CoverageResult, SearchStats) {
    let mut stats = SearchStats::new();
    let query_coverage = query.len();
    let mut result = CoverageResult {
        datasets: Vec::new(),
        coverage: query_coverage,
        query_coverage,
        gains: Vec::new(),
    };
    if k == 0 || query.is_empty() || datasets.is_empty() {
        return (result, stats);
    }

    let mut covered = query.clone();
    // Members of the result set (query first), used for connectivity checks.
    // Each member carries a pre-sorted probe so the per-candidate distance
    // test does not re-decompose the member's cells on every scan.
    let mut members: Vec<NeighborProbe> = vec![NeighborProbe::new(query)];
    let mut selected: HashSet<u32> = HashSet::new();

    while result.datasets.len() < k {
        let mut best: Option<(&DatasetNode, usize)> = None;
        for candidate in datasets {
            if selected.contains(&candidate.id) {
                continue;
            }
            // Direct connectivity to any current member keeps the result set
            // (with the query) spatially connected.
            stats.exact_computations += 1;
            let connected = members.iter().any(|m| m.within(&candidate.cells, delta));
            if !connected {
                continue;
            }
            stats.candidates += 1;
            let gain = candidate.cells.marginal_gain(&covered);
            // Ties broken by the smaller dataset id, matching CoverageSearch.
            let wins = match best {
                None => true,
                Some((current, best_gain)) => {
                    gain > best_gain || (gain == best_gain && candidate.id < current.id)
                }
            };
            if wins {
                best = Some((candidate, gain));
            }
        }
        let Some((chosen, gain)) = best else { break };
        if gain == 0 {
            break;
        }
        selected.insert(chosen.id);
        result.datasets.push(chosen.id);
        result.gains.push(gain);
        covered.union_in_place(&chosen.cells);
        members.push(NeighborProbe::new(&chosen.cells));
        result.coverage = covered.len();
    }
    (result, stats)
}

/// Runs the SG+DITS baseline: the greedy coverage search accelerated by
/// DITS-L but *without* the spatial-merge strategy of CoverageSearch.
pub fn sg_dits_coverage_search(
    index: &DitsLocal,
    query: &CellSet,
    k: usize,
    delta: f64,
) -> (CoverageResult, SearchStats) {
    coverage_search(
        index,
        query,
        CoverageConfig {
            k,
            delta,
            merge_results: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dits::DitsLocalConfig;
    use proptest::prelude::*;
    use spatial::satisfies_spatial_connectivity;
    use spatial::zorder::cell_id;
    use spatial::DatasetId;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn cs(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    fn cluster(n: u32) -> Vec<DatasetNode> {
        (0..n)
            .map(|i| {
                let x = (i % 10) * 2;
                let y = (i / 10) * 2;
                node(i, &[(x, y), (x + 1, y), (x, y + 1)])
            })
            .collect()
    }

    #[test]
    fn sg_selects_connected_chain() {
        let datasets = vec![
            node(0, &[(1, 0), (2, 0)]),
            node(1, &[(3, 0), (4, 0)]),
            node(2, &[(50, 50)]),
        ];
        let query = cs(&[(0, 0)]);
        let (result, _) = sg_coverage_search(&datasets, &query, 3, 1.0);
        assert_eq!(result.datasets, vec![0, 1]);
        assert_eq!(result.coverage, 5);
    }

    #[test]
    fn sg_respects_empty_inputs() {
        let (r, _) = sg_coverage_search(&[], &cs(&[(0, 0)]), 3, 1.0);
        assert!(r.datasets.is_empty());
        let datasets = vec![node(0, &[(0, 0)])];
        let (r, _) = sg_coverage_search(&datasets, &CellSet::new(), 3, 1.0);
        assert!(r.datasets.is_empty());
        let (r, _) = sg_coverage_search(&datasets, &cs(&[(5, 5)]), 0, 1.0);
        assert!(r.datasets.is_empty());
    }

    #[test]
    fn sg_and_coverage_search_reach_the_same_coverage() {
        let datasets = cluster(50);
        let idx = DitsLocal::build(datasets.clone(), DitsLocalConfig { leaf_capacity: 5 });
        let query = cs(&[(0, 0)]);
        for (k, delta) in [(3usize, 2.5f64), (6, 3.0), (10, 2.0)] {
            let (sg, _) = sg_coverage_search(&datasets, &query, k, delta);
            let (cov, _) = dits::coverage_search(&idx, &query, CoverageConfig::new(k, delta));
            let (sg_dits, _) = sg_dits_coverage_search(&idx, &query, k, delta);
            assert_eq!(sg.coverage, cov.coverage, "k={k} delta={delta}");
            assert_eq!(sg.coverage, sg_dits.coverage, "k={k} delta={delta}");
        }
    }

    #[test]
    fn sg_results_are_connected() {
        let datasets = cluster(40);
        let query = cs(&[(0, 0), (1, 1)]);
        let (result, _) = sg_coverage_search(&datasets, &query, 8, 2.5);
        let chosen: Vec<&CellSet> = datasets
            .iter()
            .filter(|d| result.datasets.contains(&d.id))
            .map(|d| &d.cells)
            .collect();
        let mut sets = chosen;
        sets.push(&query);
        assert!(satisfies_spatial_connectivity(&sets, 2.5));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_sg_matches_coverage_search(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..20, 0u32..20), 1..6), 1..25),
            query in proptest::collection::vec((0u32..20, 0u32..20), 1..5),
            k in 1usize..5,
            delta in 1.0f64..5.0,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let idx = DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: 4 });
            let q = cs(&query);
            let (sg, _) = sg_coverage_search(&nodes, &q, k, delta);
            let (cov, _) = dits::coverage_search(&idx, &q, CoverageConfig::new(k, delta));
            // All three strategies are the same greedy over the same
            // candidate space, so the achieved coverage must coincide.
            prop_assert_eq!(sg.coverage, cov.coverage);
            let (sgd, _) = sg_dits_coverage_search(&idx, &q, k, delta);
            prop_assert_eq!(sg.coverage, sgd.coverage);
        }
    }
}
