//! QuadTree baseline \[26\]: a region quadtree built over the *cells* of all
//! datasets (not over datasets), as described in Section VII-B.
//!
//! Every occupied cell of every dataset becomes a point `(cell, dataset id)`
//! in the quadtree; a quadrant splits into four children once it holds more
//! than the leaf capacity (4, the classic quadtree setting the paper uses).
//! OJSP finds all leaves intersecting the query MBR to collect candidate
//! datasets, then scores them in one batched
//! [`intersection_size_many`](CellSet::intersection_size_many) pass over
//! their cell sets — behaviour that is close to an inverted index and
//! explains why the paper measures QuadTree as the most memory-hungry index
//! (its node count scales with the number of cells `N`, not the number of
//! datasets `n`).

use crate::traits::OverlapIndex;
use dits::{DatasetNode, OverlapResult};
use spatial::zorder::cell_coords;
use spatial::{CellId, CellSet, DatasetId, Mbr, Point};
use std::collections::{HashMap, HashSet};

const QUAD_LEAF_CAPACITY: usize = 4;
const MAX_DEPTH: u32 = 24;

/// One point stored in the quadtree: an occupied cell of one dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CellPoint {
    cell: CellId,
    x: u32,
    y: u32,
    dataset: DatasetId,
}

#[derive(Debug, Clone)]
enum QuadNode {
    Leaf {
        points: Vec<CellPoint>,
    },
    Internal {
        /// Children in the order SW, SE, NW, NE.
        children: [usize; 4],
    },
}

/// The QuadTree baseline index.
#[derive(Debug, Clone)]
pub struct QuadTreeIndex {
    nodes: Vec<QuadNode>,
    /// Bounds of each node in cell-coordinate space, parallel to `nodes`.
    bounds: Vec<Mbr>,
    root: usize,
    datasets: HashMap<DatasetId, CellSet>,
}

impl Default for QuadTreeIndex {
    fn default() -> Self {
        Self::with_extent(Mbr::new(Point::new(0.0, 0.0), Point::new(4096.0, 4096.0)))
    }
}

impl QuadTreeIndex {
    /// Creates an empty quadtree covering the given extent (cell space).
    pub fn with_extent(extent: Mbr) -> Self {
        Self {
            nodes: vec![QuadNode::Leaf { points: Vec::new() }],
            bounds: vec![extent],
            root: 0,
            datasets: HashMap::new(),
        }
    }

    /// Builds the quadtree over a collection of dataset nodes.
    pub fn build(nodes: Vec<DatasetNode>) -> Self {
        // Size the root quadrant to cover every occupied cell.
        let mut extent: Option<Mbr> = None;
        for n in &nodes {
            let r = *n.rect();
            extent = Some(match extent {
                Some(e) => e.union(&r),
                None => r,
            });
        }
        let extent = extent
            .map(|e| Mbr::new(e.min, Point::new(e.max.x + 1.0, e.max.y + 1.0)))
            .unwrap_or_else(|| Mbr::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        let mut tree = Self::with_extent(extent);
        for node in nodes {
            tree.insert(node);
        }
        tree
    }

    /// Number of quadtree nodes (the quantity that drives its memory use).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn insert_point(&mut self, point: CellPoint, mut node: usize, mut depth: u32) {
        // Walk down to the leaf quadrant for the point, loosening the bounds
        // of every node on the path so later inserts outside the original
        // extent (e.g. after a dataset update moves far away) remain visible
        // to the MBR pruning of `candidate_datasets`.
        loop {
            self.bounds[node].expand_point(&Point::new(point.x as f64, point.y as f64));
            match &self.nodes[node] {
                QuadNode::Internal { children } => {
                    let q = self.quadrant_of(node, point.x as f64, point.y as f64);
                    node = children[q];
                    depth += 1;
                }
                QuadNode::Leaf { .. } => break,
            }
        }
        let bound = self.bounds[node];
        // A quadrant at cell granularity (or at the depth cap) never splits,
        // so identical points cannot trigger unbounded subdivision.
        let splittable = bound.width() > 1.0 || bound.height() > 1.0;
        let len = match &mut self.nodes[node] {
            QuadNode::Leaf { points } => {
                points.push(point);
                points.len()
            }
            QuadNode::Internal { .. } => unreachable!("loop above stops at a leaf"),
        };
        if len > QUAD_LEAF_CAPACITY && depth < MAX_DEPTH && splittable {
            self.split(node, depth);
        }
    }

    fn quadrant_of(&self, node: usize, x: f64, y: f64) -> usize {
        let b = self.bounds[node];
        let cx = (b.min.x + b.max.x) / 2.0;
        let cy = (b.min.y + b.max.y) / 2.0;
        match (x >= cx, y >= cy) {
            (false, false) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (true, true) => 3,
        }
    }

    fn split(&mut self, node: usize, depth: u32) {
        let b = self.bounds[node];
        let cx = (b.min.x + b.max.x) / 2.0;
        let cy = (b.min.y + b.max.y) / 2.0;
        let quadrants = [
            Mbr::new(b.min, Point::new(cx, cy)),
            Mbr::new(Point::new(cx, b.min.y), Point::new(b.max.x, cy)),
            Mbr::new(Point::new(b.min.x, cy), Point::new(cx, b.max.y)),
            Mbr::new(Point::new(cx, cy), b.max),
        ];
        let mut children = [0usize; 4];
        for (i, q) in quadrants.iter().enumerate() {
            self.nodes.push(QuadNode::Leaf { points: Vec::new() });
            self.bounds.push(*q);
            children[i] = self.nodes.len() - 1;
        }
        let points = match std::mem::replace(&mut self.nodes[node], QuadNode::Internal { children })
        {
            QuadNode::Leaf { points } => points,
            QuadNode::Internal { .. } => unreachable!("split called on internal node"),
        };
        for p in points {
            let child = children[self.quadrant_of(node, p.x as f64, p.y as f64)];
            self.insert_point(p, child, depth + 1);
        }
    }

    fn remove_dataset_points(&mut self, id: DatasetId) {
        for node in &mut self.nodes {
            if let QuadNode::Leaf { points } = node {
                points.retain(|p| p.dataset != id);
            }
        }
    }

    /// Collects the ids of datasets owning at least one point in a quadrant
    /// intersecting the query MBR.  Every dataset cell inside the query lies
    /// inside the query's MBR, so its quadrant is visited and the owning
    /// dataset is discovered; exact overlaps are then computed in one
    /// batched intersection pass over the candidates' cell sets.
    fn candidate_datasets(&self, query_rect: &Mbr) -> Vec<DatasetId> {
        let mut seen = HashSet::new();
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            if !self.bounds[idx].intersects(query_rect) {
                continue;
            }
            match &self.nodes[idx] {
                QuadNode::Leaf { points } => seen.extend(points.iter().map(|p| p.dataset)),
                QuadNode::Internal { children } => stack.extend_from_slice(children),
            }
        }
        let mut candidates: Vec<DatasetId> = seen.into_iter().collect();
        candidates.sort_unstable();
        candidates
    }
}

impl OverlapIndex for QuadTreeIndex {
    fn name(&self) -> &'static str {
        "QuadTree"
    }

    fn dataset_count(&self) -> usize {
        self.datasets.len()
    }

    fn memory_bytes(&self) -> usize {
        let node_bytes = self.nodes.capacity() * std::mem::size_of::<QuadNode>()
            + self.bounds.capacity() * std::mem::size_of::<Mbr>();
        let point_bytes: usize = self
            .nodes
            .iter()
            .map(|n| match n {
                QuadNode::Leaf { points } => points.capacity() * std::mem::size_of::<CellPoint>(),
                QuadNode::Internal { .. } => 0,
            })
            .sum();
        node_bytes + point_bytes
    }

    fn overlap_search(&self, query: &CellSet, k: usize) -> Vec<OverlapResult> {
        if k == 0 || query.is_empty() {
            return Vec::new();
        }
        let Some(query_rect) = query.mbr_cell_space() else {
            return Vec::new();
        };
        let candidates = self.candidate_datasets(&query_rect);
        let overlaps =
            query.intersection_size_many(candidates.iter().map(|dataset| &self.datasets[dataset]));
        let mut results: Vec<OverlapResult> = candidates
            .into_iter()
            .zip(overlaps)
            .filter(|&(_, overlap)| overlap > 0)
            .map(|(dataset, overlap)| OverlapResult { dataset, overlap })
            .collect();
        results.sort_unstable_by(|a, b| b.overlap.cmp(&a.overlap).then(a.dataset.cmp(&b.dataset)));
        results.truncate(k);
        results
    }

    fn insert(&mut self, node: DatasetNode) -> bool {
        if self.datasets.contains_key(&node.id) {
            return false;
        }
        for cell in node.cells.iter() {
            let (x, y) = cell_coords(cell);
            // Points outside the root extent are clamped into it; the cell id
            // itself stays exact so overlap counting is unaffected.
            let point = CellPoint {
                cell,
                x,
                y,
                dataset: node.id,
            };
            self.insert_point(point, self.root, 0);
        }
        self.datasets.insert(node.id, node.cells);
        true
    }

    fn update(&mut self, node: DatasetNode) -> bool {
        if !self.datasets.contains_key(&node.id) {
            return false;
        }
        // A dataset update re-locates every affected cell: remove all old
        // points, then insert the new ones.
        self.remove_dataset_points(node.id);
        self.datasets.remove(&node.id);
        self.insert(node)
    }

    fn delete(&mut self, id: DatasetId) -> bool {
        if self.datasets.remove(&id).is_none() {
            return false;
        }
        self.remove_dataset_points(id);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dits::overlap::overlap_search_bruteforce;
    use proptest::prelude::*;
    use spatial::zorder::cell_id;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn cs(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    #[test]
    fn splits_when_capacity_exceeded() {
        let nodes: Vec<DatasetNode> = (0..10)
            .map(|i| node(i, &[(i * 3 % 30, i * 5 % 30)]))
            .collect();
        let tree = QuadTreeIndex::build(nodes);
        assert!(tree.node_count() > 1, "tree should have split");
        assert_eq!(tree.dataset_count(), 10);
        assert!(tree.memory_bytes() > 0);
    }

    #[test]
    fn overlap_search_counts_cells() {
        let tree = QuadTreeIndex::build(vec![
            node(0, &[(0, 0), (1, 0), (2, 0)]),
            node(1, &[(1, 0)]),
            node(2, &[(20, 20)]),
        ]);
        let results = tree.overlap_search(&cs(&[(0, 0), (1, 0), (5, 5)]), 3);
        assert_eq!(
            results[0],
            OverlapResult {
                dataset: 0,
                overlap: 2
            }
        );
        assert_eq!(
            results[1],
            OverlapResult {
                dataset: 1,
                overlap: 1
            }
        );
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn identical_cells_do_not_split_forever() {
        // 20 datasets all on the same single cell: the quadrant is
        // degenerate, so it must not split indefinitely.
        let nodes: Vec<DatasetNode> = (0..20).map(|i| node(i, &[(5, 5)])).collect();
        let tree = QuadTreeIndex::build(nodes);
        assert_eq!(tree.dataset_count(), 20);
        let results = tree.overlap_search(&cs(&[(5, 5)]), 25);
        assert_eq!(results.len(), 20);
    }

    #[test]
    fn maintenance_operations() {
        let mut tree = QuadTreeIndex::build(vec![node(0, &[(0, 0)])]);
        assert!(tree.insert(node(1, &[(3, 3), (4, 4)])));
        assert!(!tree.insert(node(1, &[(9, 9)])));
        assert!(tree.update(node(1, &[(9, 9)])));
        assert!(!tree.update(node(5, &[(9, 9)])));
        let r = tree.overlap_search(&cs(&[(9, 9)]), 5);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].dataset, 1);
        assert!(tree.overlap_search(&cs(&[(3, 3)]), 5).is_empty());
        assert!(tree.delete(0));
        assert!(!tree.delete(0));
        assert_eq!(tree.dataset_count(), 1);
    }

    #[test]
    fn empty_cases() {
        let tree = QuadTreeIndex::default();
        assert!(tree.overlap_search(&cs(&[(0, 0)]), 3).is_empty());
        let tree = QuadTreeIndex::build(vec![node(0, &[(0, 0)])]);
        assert!(tree.overlap_search(&CellSet::new(), 3).is_empty());
        assert!(tree.overlap_search(&cs(&[(0, 0)]), 0).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_bruteforce(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..48, 0u32..48), 1..10), 1..35),
            query in proptest::collection::vec((0u32..48, 0u32..48), 1..12),
            k in 1usize..10,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let tree = QuadTreeIndex::build(nodes.clone());
            let q = cs(&query);
            let got = tree.overlap_search(&q, k);
            let expected = overlap_search_bruteforce(&nodes, &q, k);
            prop_assert_eq!(
                got.iter().map(|r| r.overlap).collect::<Vec<_>>(),
                expected.iter().map(|r| r.overlap).collect::<Vec<_>>()
            );
        }
    }
}
