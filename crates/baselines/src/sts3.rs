//! STS3 baseline \[39\]: cells plus a single inverted index from cell ID to
//! the datasets containing that cell, over the whole data source.
//!
//! The DITS paper characterises searching with STS3 as "scanning all
//! datasets and estimating the number of set intersections, where pairwise
//! comparisons are time-consuming" and notes that its running time barely
//! changes with `k` because every touched dataset must be ranked.  The
//! search here follows that characterisation: every dataset of the source is
//! scanned and its exact cell intersection with the query is computed
//! pairwise, then all datasets are ranked.  The inverted index is what makes
//! STS3 cheap to *build*, small in memory and fast to *update* (Figs. 8,
//! 21–22), which is the trade-off the evaluation highlights.

use crate::traits::OverlapIndex;
use dits::{DatasetNode, OverlapResult};
use spatial::{CellId, CellSet, DatasetId};
use std::collections::HashMap;

/// The STS3 inverted index.
#[derive(Debug, Clone, Default)]
pub struct Sts3Index {
    postings: HashMap<CellId, Vec<DatasetId>>,
    datasets: HashMap<DatasetId, CellSet>,
}

impl Sts3Index {
    /// Builds the index over a collection of dataset nodes.
    pub fn build(nodes: Vec<DatasetNode>) -> Self {
        let mut index = Self::default();
        for node in nodes {
            index.insert(node);
        }
        index
    }

    /// Number of distinct cells indexed.
    pub fn key_count(&self) -> usize {
        self.postings.len()
    }

    fn add_postings(&mut self, id: DatasetId, cells: &CellSet) {
        for cell in cells.iter() {
            self.postings.entry(cell).or_default().push(id);
        }
    }

    fn remove_postings(&mut self, id: DatasetId, cells: &CellSet) {
        for cell in cells.iter() {
            if let Some(list) = self.postings.get_mut(&cell) {
                list.retain(|d| *d != id);
                if list.is_empty() {
                    self.postings.remove(&cell);
                }
            }
        }
    }
}

impl OverlapIndex for Sts3Index {
    fn name(&self) -> &'static str {
        "STS3"
    }

    fn dataset_count(&self) -> usize {
        self.datasets.len()
    }

    fn memory_bytes(&self) -> usize {
        let posting_bytes: usize = self
            .postings
            .values()
            .map(|v| {
                std::mem::size_of::<CellId>()
                    + std::mem::size_of::<Vec<DatasetId>>()
                    + v.capacity() * std::mem::size_of::<DatasetId>()
            })
            .sum();
        // Unlike the tree indexes, STS3 does not keep per-dataset geometry;
        // only the posting lists count towards its footprint (the raw cell
        // sets are the data itself, shared by every index in the comparison).
        posting_bytes
    }

    fn overlap_search(&self, query: &CellSet, k: usize) -> Vec<OverlapResult> {
        if k == 0 || query.is_empty() {
            return Vec::new();
        }
        // Scan every dataset and rank all of them (the behaviour the paper
        // attributes to STS3).  The whole scan is one batched intersection
        // pass, so the query's packed word representation is built once and
        // reused against every dataset.
        let overlaps = query.intersection_size_many(self.datasets.values());
        let mut results: Vec<OverlapResult> = self
            .datasets
            .keys()
            .zip(overlaps)
            .map(|(&dataset, overlap)| OverlapResult { dataset, overlap })
            .filter(|r| r.overlap > 0)
            .collect();
        results.sort_unstable_by(|a, b| b.overlap.cmp(&a.overlap).then(a.dataset.cmp(&b.dataset)));
        results.truncate(k);
        results
    }

    fn insert(&mut self, node: DatasetNode) -> bool {
        if self.datasets.contains_key(&node.id) {
            return false;
        }
        self.add_postings(node.id, &node.cells);
        self.datasets.insert(node.id, node.cells);
        true
    }

    fn update(&mut self, node: DatasetNode) -> bool {
        let Some(old) = self.datasets.remove(&node.id) else {
            return false;
        };
        self.remove_postings(node.id, &old);
        self.add_postings(node.id, &node.cells);
        self.datasets.insert(node.id, node.cells);
        true
    }

    fn delete(&mut self, id: DatasetId) -> bool {
        let Some(old) = self.datasets.remove(&id) else {
            return false;
        };
        self.remove_postings(id, &old);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dits::overlap::overlap_search_bruteforce;
    use proptest::prelude::*;
    use spatial::zorder::cell_id;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn cs(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    #[test]
    fn finds_top_k_by_overlap() {
        let idx = Sts3Index::build(vec![
            node(0, &[(0, 0), (1, 0), (2, 0)]),
            node(1, &[(1, 0)]),
            node(2, &[(9, 9)]),
        ]);
        let results = idx.overlap_search(&cs(&[(0, 0), (1, 0)]), 2);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].dataset, 0);
        assert_eq!(results[0].overlap, 2);
        assert_eq!(results[1].dataset, 1);
    }

    #[test]
    fn updates_are_reflected() {
        let mut idx = Sts3Index::build(vec![node(0, &[(0, 0)])]);
        assert!(!idx.insert(node(0, &[(1, 1)])));
        assert!(idx.insert(node(1, &[(1, 1)])));
        assert!(idx.update(node(1, &[(2, 2)])));
        assert!(!idx.update(node(9, &[(2, 2)])));
        let results = idx.overlap_search(&cs(&[(2, 2)]), 5);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].dataset, 1);
        assert!(idx.delete(1));
        assert!(!idx.delete(1));
        assert!(idx.overlap_search(&cs(&[(2, 2)]), 5).is_empty());
        assert_eq!(idx.dataset_count(), 1);
    }

    #[test]
    fn empty_cases() {
        let idx = Sts3Index::default();
        assert!(idx.overlap_search(&cs(&[(0, 0)]), 3).is_empty());
        assert_eq!(idx.memory_bytes(), 0);
        assert_eq!(idx.key_count(), 0);
        let idx = Sts3Index::build(vec![node(0, &[(0, 0)])]);
        assert!(idx.overlap_search(&CellSet::new(), 3).is_empty());
        assert!(idx.overlap_search(&cs(&[(0, 0)]), 0).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_bruteforce(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..48, 0u32..48), 1..10), 1..40),
            query in proptest::collection::vec((0u32..48, 0u32..48), 1..12),
            k in 1usize..10,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let idx = Sts3Index::build(nodes.clone());
            let q = cs(&query);
            let got = idx.overlap_search(&q, k);
            let expected = overlap_search_bruteforce(&nodes, &q, k);
            prop_assert_eq!(
                got.iter().map(|r| r.overlap).collect::<Vec<_>>(),
                expected.iter().map(|r| r.overlap).collect::<Vec<_>>()
            );
        }
    }
}
