//! Josie baseline \[73\]: exact top-k overlap set similarity search with a
//! sorted inverted index and prefix-filter early termination, applied to
//! cell-ID sets.
//!
//! Tokens (cell IDs) are globally ordered by increasing document frequency.
//! Each dataset's token list is stored in that order, and each posting-list
//! entry records the token's *position* inside the dataset so the remaining
//! potential overlap (`|S_D| − position`) is known when the candidate is
//! first met.  The query's tokens are processed rarest-first; once the number
//! of unread query tokens cannot lift any new candidate above the current
//! `k`-th best overlap, reading stops and only the accumulated candidates
//! are verified exactly.  This mirrors the prefix-filter behaviour whose
//! data-distribution sensitivity the paper discusses.

use crate::traits::OverlapIndex;
use dits::{DatasetNode, OverlapResult};
use spatial::{CellId, CellSet, DatasetId};
use std::collections::HashMap;

/// One posting entry: the dataset containing the token and the dataset's
/// size, so a candidate's maximum possible overlap is known the moment it is
/// first met.
#[derive(Debug, Clone, Copy)]
struct Posting {
    dataset: DatasetId,
    size: usize,
}

/// The Josie sorted inverted index.
#[derive(Debug, Clone, Default)]
pub struct JosieIndex {
    /// Posting lists per token.
    postings: HashMap<CellId, Vec<Posting>>,
    /// Raw cell sets, used for exact verification.
    datasets: HashMap<DatasetId, CellSet>,
    /// Global document frequency of each token.
    frequency: HashMap<CellId, usize>,
}

impl JosieIndex {
    /// Builds the index over a collection of dataset nodes.
    ///
    /// Building is quadratic-ish in the spirit of the original system (global
    /// frequency ordering followed by per-dataset sorting), which is why the
    /// paper reports Josie as the slowest index to construct.
    pub fn build(nodes: Vec<DatasetNode>) -> Self {
        let mut index = Self::default();
        for node in &nodes {
            for cell in node.cells.iter() {
                *index.frequency.entry(cell).or_insert(0) += 1;
            }
        }
        for node in nodes {
            index.add_dataset(node.id, node.cells);
        }
        index
    }

    /// Orders a dataset's tokens rarest-first (ties by token id).
    fn ordered_tokens(&self, cells: &CellSet) -> Vec<CellId> {
        let mut tokens: Vec<CellId> = cells.iter().collect();
        tokens.sort_unstable_by_key(|c| (self.frequency.get(c).copied().unwrap_or(0), *c));
        tokens
    }

    fn add_dataset(&mut self, id: DatasetId, cells: CellSet) {
        for cell in cells.iter() {
            self.frequency.entry(cell).or_insert(0);
        }
        let tokens = self.ordered_tokens(&cells);
        let size = tokens.len();
        for token in tokens {
            self.postings
                .entry(token)
                .or_default()
                .push(Posting { dataset: id, size });
        }
        self.datasets.insert(id, cells);
    }

    fn remove_dataset(&mut self, id: DatasetId) -> Option<CellSet> {
        let cells = self.datasets.remove(&id)?;
        for cell in cells.iter() {
            if let Some(list) = self.postings.get_mut(&cell) {
                list.retain(|p| p.dataset != id);
                if list.is_empty() {
                    self.postings.remove(&cell);
                }
            }
        }
        Some(cells)
    }
}

impl OverlapIndex for JosieIndex {
    fn name(&self) -> &'static str {
        "Josie"
    }

    fn dataset_count(&self) -> usize {
        self.datasets.len()
    }

    fn memory_bytes(&self) -> usize {
        let postings: usize = self
            .postings
            .values()
            .map(|v| {
                std::mem::size_of::<CellId>()
                    + std::mem::size_of::<Vec<Posting>>()
                    + v.capacity() * std::mem::size_of::<Posting>()
            })
            .sum();
        let freq =
            self.frequency.len() * (std::mem::size_of::<CellId>() + std::mem::size_of::<usize>());
        postings + freq
    }

    fn overlap_search(&self, query: &CellSet, k: usize) -> Vec<OverlapResult> {
        if k == 0 || query.is_empty() || self.datasets.is_empty() {
            return Vec::new();
        }
        // Query tokens rarest-first.
        let tokens = self.ordered_tokens(query);
        let total = tokens.len();

        // Partial overlap counts (and the dataset sizes recorded in the
        // postings) accumulated while reading posting lists.
        let mut partial: HashMap<DatasetId, (usize, usize)> = HashMap::new();
        // Exact overlaps of verified candidates, kept sorted descending.
        let mut exact: Vec<OverlapResult> = Vec::new();
        let mut verified: std::collections::HashSet<DatasetId> = std::collections::HashSet::new();

        let kth_best = |exact: &[OverlapResult]| -> usize {
            if exact.len() >= k {
                exact[k - 1].overlap
            } else {
                0
            }
        };

        // Reading phase: stop once no *unseen* dataset can beat the current
        // k-th best (an unseen dataset overlaps the query only in the unread
        // suffix, so its overlap is at most `remaining`).
        let mut remaining = total;
        for (read, token) in tokens.iter().enumerate() {
            if exact.len() >= k && remaining <= kth_best(&exact) {
                break;
            }
            if let Some(list) = self.postings.get(token) {
                for p in list {
                    let entry = partial.entry(p.dataset).or_insert((0, p.size));
                    entry.0 += 1;
                }
            }
            remaining = total - (read + 1);
            // Promote the most promising unverified candidate so the k-th
            // best rises and the termination test can fire early.
            if let Some((&dataset, _)) = partial
                .iter()
                .filter(|(d, _)| !verified.contains(*d))
                .max_by_key(|(_, &(c, _))| c)
            {
                verified.insert(dataset);
                let overlap = self.datasets[&dataset].intersection_size(query);
                if overlap > 0 {
                    exact.push(OverlapResult { dataset, overlap });
                    exact.sort_unstable_by(|a, b| {
                        b.overlap.cmp(&a.overlap).then(a.dataset.cmp(&b.dataset))
                    });
                }
            }
        }

        // Verification phase: any dataset that could still beat the k-th best
        // must already appear in `partial` (it shares at least one read
        // token), and its overlap is at most
        // `partial count + min(remaining, dataset size − partial count)`.
        let mut candidates: Vec<(DatasetId, usize)> = partial
            .iter()
            .filter(|(d, _)| !verified.contains(*d))
            .map(|(&d, &(count, size))| (d, count + remaining.min(size.saturating_sub(count))))
            .collect();
        candidates.sort_unstable_by_key(|&(_, upper_bound)| std::cmp::Reverse(upper_bound));
        // Exact overlaps are computed in small batched intersection passes
        // (one `intersection_size_many` call per chunk, reusing the query's
        // packed representation), then replayed candidate by candidate so
        // the early-termination decision is exactly the one the sequential
        // loop would have made — at most a chunk of speculative
        // intersections is wasted when termination fires mid-chunk.
        const VERIFY_CHUNK: usize = 16;
        'verify: for chunk in candidates.chunks(VERIFY_CHUNK) {
            let overlaps =
                query.intersection_size_many(chunk.iter().map(|(d, _)| &self.datasets[d]));
            for (&(dataset, upper_bound), overlap) in chunk.iter().zip(overlaps) {
                if exact.len() >= k && upper_bound <= kth_best(&exact) {
                    // Candidates are sorted by decreasing upper bound, so
                    // all later ones fail this test too.
                    break 'verify;
                }
                if overlap > 0 {
                    exact.push(OverlapResult { dataset, overlap });
                    exact.sort_unstable_by(|a, b| {
                        b.overlap.cmp(&a.overlap).then(a.dataset.cmp(&b.dataset))
                    });
                }
            }
        }
        exact.truncate(k);
        exact
    }

    fn insert(&mut self, node: DatasetNode) -> bool {
        if self.datasets.contains_key(&node.id) {
            return false;
        }
        // Keep the global frequencies current, then re-derive the token
        // ordering for the new dataset (the sorting step that makes Josie's
        // maintenance comparatively expensive).
        for cell in node.cells.iter() {
            *self.frequency.entry(cell).or_insert(0) += 1;
        }
        self.add_dataset(node.id, node.cells);
        true
    }

    fn update(&mut self, node: DatasetNode) -> bool {
        if !self.datasets.contains_key(&node.id) {
            return false;
        }
        let old = self.remove_dataset(node.id).expect("checked above");
        for cell in old.iter() {
            if let Some(f) = self.frequency.get_mut(&cell) {
                *f = f.saturating_sub(1);
            }
        }
        for cell in node.cells.iter() {
            *self.frequency.entry(cell).or_insert(0) += 1;
        }
        self.add_dataset(node.id, node.cells);
        true
    }

    fn delete(&mut self, id: DatasetId) -> bool {
        match self.remove_dataset(id) {
            Some(old) => {
                for cell in old.iter() {
                    if let Some(f) = self.frequency.get_mut(&cell) {
                        *f = f.saturating_sub(1);
                    }
                }
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dits::overlap::overlap_search_bruteforce;
    use proptest::prelude::*;
    use spatial::zorder::cell_id;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn cs(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    #[test]
    fn finds_exact_top_k() {
        let idx = JosieIndex::build(vec![
            node(0, &[(0, 0), (1, 0), (2, 0), (3, 0)]),
            node(1, &[(0, 0), (1, 0)]),
            node(2, &[(7, 7)]),
        ]);
        let results = idx.overlap_search(&cs(&[(0, 0), (1, 0), (2, 0)]), 2);
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0],
            OverlapResult {
                dataset: 0,
                overlap: 3
            }
        );
        assert_eq!(
            results[1],
            OverlapResult {
                dataset: 1,
                overlap: 2
            }
        );
    }

    #[test]
    fn maintenance_operations() {
        let mut idx = JosieIndex::build(vec![node(0, &[(0, 0)])]);
        assert!(idx.insert(node(1, &[(1, 1), (2, 2)])));
        assert!(!idx.insert(node(1, &[(3, 3)])));
        assert!(idx.update(node(1, &[(5, 5)])));
        assert!(!idx.update(node(7, &[(5, 5)])));
        assert_eq!(idx.dataset_count(), 2);
        let r = idx.overlap_search(&cs(&[(5, 5)]), 3);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].dataset, 1);
        assert!(idx.delete(0));
        assert!(!idx.delete(0));
        assert_eq!(idx.dataset_count(), 1);
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn empty_cases() {
        let idx = JosieIndex::default();
        assert!(idx.overlap_search(&cs(&[(0, 0)]), 3).is_empty());
        let idx = JosieIndex::build(vec![node(0, &[(0, 0)])]);
        assert!(idx.overlap_search(&CellSet::new(), 3).is_empty());
        assert!(idx.overlap_search(&cs(&[(0, 0)]), 0).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_bruteforce(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..40, 0u32..40), 1..10), 1..35),
            query in proptest::collection::vec((0u32..40, 0u32..40), 1..12),
            k in 1usize..8,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let idx = JosieIndex::build(nodes.clone());
            let q = cs(&query);
            let got = idx.overlap_search(&q, k);
            let expected = overlap_search_bruteforce(&nodes, &q, k);
            prop_assert_eq!(
                got.iter().map(|r| r.overlap).collect::<Vec<_>>(),
                expected.iter().map(|r| r.overlap).collect::<Vec<_>>(),
                "got {:?} expected {:?}", got, expected
            );
        }
    }
}
