//! Pricing models for spatial datasets offered by a data marketplace.
//!
//! Open-data portals are free, but the multi-source setting the paper
//! motivates — independent companies exposing their own data sources —
//! naturally leads to priced datasets.  A [`PricingModel`] maps a dataset
//! (through its cell-based coverage and point count) to a price, and a
//! [`PriceBook`] records the concrete offer of one data source.

use dits::DatasetNode;
use serde::{Deserialize, Serialize};
use spatial::DatasetId;
use std::collections::HashMap;

/// How a data source prices its datasets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PricingModel {
    /// Every dataset costs the same flat amount.
    Flat {
        /// Price per dataset.
        price: f64,
    },
    /// Price proportional to the dataset's spatial coverage (its number of
    /// cells) — larger datasets cost more.
    PerCell {
        /// Price per covered cell.
        rate: f64,
        /// Minimum charge per dataset.
        minimum: f64,
    },
    /// Tiered volume pricing: the per-cell rate drops once the coverage
    /// exceeds each tier boundary (marginal pricing, like cloud egress).
    Tiered {
        /// `(coverage boundary, per-cell rate)` pairs, evaluated in order;
        /// cells beyond the last boundary use the last rate.
        tiers: Vec<(usize, f64)>,
        /// Minimum charge per dataset.
        minimum: f64,
    },
}

impl PricingModel {
    /// Price of a dataset with the given coverage (number of cells).
    pub fn price_for_coverage(&self, coverage: usize) -> f64 {
        match self {
            PricingModel::Flat { price } => *price,
            PricingModel::PerCell { rate, minimum } => (coverage as f64 * rate).max(*minimum),
            PricingModel::Tiered { tiers, minimum } => {
                if tiers.is_empty() {
                    return *minimum;
                }
                let mut remaining = coverage;
                let mut total = 0.0;
                let mut previous_boundary = 0usize;
                for &(boundary, rate) in tiers {
                    let span = boundary.saturating_sub(previous_boundary);
                    let in_tier = remaining.min(span);
                    total += in_tier as f64 * rate;
                    remaining -= in_tier;
                    previous_boundary = boundary;
                    if remaining == 0 {
                        break;
                    }
                }
                if remaining > 0 {
                    // Beyond the last boundary: the last tier's rate applies.
                    total += remaining as f64 * tiers.last().map(|t| t.1).unwrap_or(0.0);
                }
                total.max(*minimum)
            }
        }
    }

    /// Price of a dataset node.
    pub fn price_of(&self, node: &DatasetNode) -> f64 {
        self.price_for_coverage(node.coverage())
    }
}

/// The price of one concrete dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetPrice {
    /// The priced dataset.
    pub dataset: DatasetId,
    /// Its price in marketplace currency units.
    pub price: f64,
}

/// The price book of one data source: per-dataset prices, either set
/// explicitly or derived from a [`PricingModel`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PriceBook {
    prices: HashMap<DatasetId, f64>,
}

impl PriceBook {
    /// Creates an empty price book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Derives a price book from a pricing model applied to every dataset
    /// node of a source.
    pub fn from_model<'a, I>(model: &PricingModel, nodes: I) -> Self
    where
        I: IntoIterator<Item = &'a DatasetNode>,
    {
        let prices = nodes
            .into_iter()
            .map(|n| (n.id, model.price_of(n)))
            .collect();
        Self { prices }
    }

    /// Sets (or overrides) the price of one dataset.
    pub fn set(&mut self, dataset: DatasetId, price: f64) {
        self.prices.insert(dataset, price.max(0.0));
    }

    /// The price of a dataset; unpriced datasets are treated as not for sale
    /// and return `None`.
    pub fn price(&self, dataset: DatasetId) -> Option<f64> {
        self.prices.get(&dataset).copied()
    }

    /// Number of priced datasets.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Returns `true` when the book prices no dataset.
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// Total price of a combination of datasets; `None` when any of them is
    /// not for sale.
    pub fn total(&self, datasets: &[DatasetId]) -> Option<f64> {
        datasets.iter().map(|d| self.price(*d)).sum()
    }

    /// Iterates over all `(dataset, price)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DatasetId, f64)> + '_ {
        self.prices.iter().map(|(&d, &p)| (d, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial::zorder::cell_id;
    use spatial::CellSet;

    fn node(id: DatasetId, n_cells: u32) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells((0..n_cells).map(|i| cell_id(i % 64, i / 64))),
        )
        .unwrap()
    }

    #[test]
    fn flat_pricing_ignores_coverage() {
        let model = PricingModel::Flat { price: 12.5 };
        assert_eq!(model.price_for_coverage(1), 12.5);
        assert_eq!(model.price_for_coverage(10_000), 12.5);
        assert_eq!(model.price_of(&node(0, 50)), 12.5);
    }

    #[test]
    fn per_cell_pricing_scales_with_coverage() {
        let model = PricingModel::PerCell {
            rate: 0.5,
            minimum: 2.0,
        };
        assert_eq!(model.price_for_coverage(100), 50.0);
        // The minimum kicks in for tiny datasets.
        assert_eq!(model.price_for_coverage(1), 2.0);
        assert_eq!(model.price_of(&node(0, 10)), 5.0);
    }

    #[test]
    fn tiered_pricing_applies_marginal_rates() {
        // First 10 cells at 1.0, next 90 at 0.5, beyond 100 at 0.1.
        let model = PricingModel::Tiered {
            tiers: vec![(10, 1.0), (100, 0.5), (usize::MAX, 0.1)],
            minimum: 0.0,
        };
        assert_eq!(model.price_for_coverage(10), 10.0);
        assert_eq!(model.price_for_coverage(100), 10.0 + 45.0);
        assert_eq!(model.price_for_coverage(200), 10.0 + 45.0 + 10.0);
        // Degenerate tier list falls back to the minimum.
        let empty = PricingModel::Tiered {
            tiers: vec![],
            minimum: 3.0,
        };
        assert_eq!(empty.price_for_coverage(1000), 3.0);
    }

    #[test]
    fn tiered_pricing_beyond_last_boundary_uses_last_rate() {
        let model = PricingModel::Tiered {
            tiers: vec![(10, 2.0)],
            minimum: 0.0,
        };
        // 10 cells at 2.0 each, 5 more at the last rate (2.0).
        assert_eq!(model.price_for_coverage(15), 30.0);
    }

    #[test]
    fn price_book_from_model_prices_every_node() {
        let nodes: Vec<DatasetNode> = (0..5).map(|i| node(i, (i + 1) * 10)).collect();
        let model = PricingModel::PerCell {
            rate: 1.0,
            minimum: 0.0,
        };
        let book = PriceBook::from_model(&model, nodes.iter());
        assert_eq!(book.len(), 5);
        assert!(!book.is_empty());
        assert_eq!(book.price(0), Some(10.0));
        assert_eq!(book.price(4), Some(50.0));
        assert_eq!(book.price(99), None);
        assert_eq!(book.total(&[0, 4]), Some(60.0));
        assert_eq!(book.total(&[0, 99]), None);
    }

    #[test]
    fn explicit_prices_override_and_clamp() {
        let mut book = PriceBook::new();
        assert!(book.is_empty());
        book.set(3, 7.0);
        book.set(3, -5.0); // negative prices are clamped to zero
        assert_eq!(book.price(3), Some(0.0));
        assert_eq!(book.iter().count(), 1);
    }
}
