//! Price-aware spatial dataset combination search.
//!
//! The paper closes with: *"An interesting future research direction is to
//! explore the spatial dataset search based on the data pricing to return the
//! optimal dataset combination."*  This crate implements that direction on
//! top of the same cell-set vocabulary and DITS index used by the exact
//! algorithms:
//!
//! * [`model`] — pricing models for datasets sold by a data marketplace:
//!   flat per-dataset prices, per-cell (per-coverage) rates, tiered volume
//!   pricing, and per-source price books.
//! * [`budgeted`] — the *budgeted* coverage joinable search: maximise the
//!   covered area subject to a monetary budget instead of a cardinality
//!   budget `k` (the budgeted maximum coverage problem of Khuller, Moss &
//!   Naor \[33\], extended with the paper's spatial-connectivity constraint).
//! * [`weighted`] — the *weighted* coverage joinable search: cells carry
//!   non-uniform value (e.g. commuter demand per cell), and the search
//!   maximises the total value covered (the weighted MCP of \[48\]).
//! * [`combination`] — exhaustive optimal combination search for small
//!   instances plus value-for-money ranking helpers, used both by tests (to
//!   validate the greedy heuristics) and by the marketplace example.

#![warn(missing_docs)]

pub mod budgeted;
pub mod combination;
pub mod model;
pub mod weighted;

pub use budgeted::{budgeted_coverage_search, BudgetedConfig, BudgetedResult};
pub use combination::{optimal_combination, rank_by_value, CombinationResult};
pub use model::{DatasetPrice, PriceBook, PricingModel};
pub use weighted::{weighted_coverage_search, CellWeights, WeightedConfig, WeightedResult};
