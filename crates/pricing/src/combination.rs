//! Optimal dataset combinations and value-for-money ranking.
//!
//! The marketplace question the paper's conclusion poses — *"return the
//! optimal dataset combination"* — is NP-hard even without prices (it
//! contains CJSP).  This module provides:
//!
//! * [`optimal_combination`] — an exhaustive solver for small candidate pools
//!   (≤ 20 datasets) that enumerates every affordable, connected subset and
//!   returns the one with the maximum coverage, used to validate the greedy
//!   heuristics and to answer small curated marketplaces exactly;
//! * [`rank_by_value`] — a value-for-money ranking of individual datasets
//!   with respect to a query (overlap gained per currency unit), the simple
//!   scoreboard a marketplace UI would show before any combinatorial search.

use crate::model::PriceBook;
use dits::DatasetNode;
use serde::{Deserialize, Serialize};
use spatial::{satisfies_spatial_connectivity, CellSet, DatasetId};

/// The best combination found by the exhaustive solver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinationResult {
    /// The selected datasets (sorted by id).
    pub datasets: Vec<DatasetId>,
    /// Coverage `|S_Q ∪ (∪ S_Di)|` of the combination.
    pub coverage: usize,
    /// Total price of the combination.
    pub price: f64,
}

/// Exhaustively finds the affordable, connected subset of at most
/// `max_datasets` datasets with the maximum coverage.
///
/// Ties on coverage are broken by the lower price, then by the
/// lexicographically smaller id set, so the result is deterministic.
///
/// # Panics
///
/// Panics when more than 20 candidate datasets are supplied — the enumeration
/// is exponential and larger pools should use the greedy solvers instead.
pub fn optimal_combination(
    candidates: &[DatasetNode],
    query: &CellSet,
    prices: &PriceBook,
    budget: f64,
    delta: f64,
    max_datasets: usize,
) -> CombinationResult {
    assert!(
        candidates.len() <= 20,
        "optimal_combination enumerates subsets and supports at most 20 candidates"
    );
    let mut best = CombinationResult {
        datasets: Vec::new(),
        coverage: query.len(),
        price: 0.0,
    };
    let n = candidates.len();
    for mask in 0u32..(1u32 << n) {
        if (mask.count_ones() as usize) > max_datasets {
            continue;
        }
        let chosen: Vec<&DatasetNode> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| &candidates[i])
            .collect();
        // Affordability first (cheap test), then connectivity.
        let ids: Vec<DatasetId> = chosen.iter().map(|d| d.id).collect();
        let Some(price) = prices.total(&ids) else {
            continue;
        };
        if price > budget {
            continue;
        }
        let mut sets: Vec<&CellSet> = chosen.iter().map(|d| &d.cells).collect();
        sets.push(query);
        if !satisfies_spatial_connectivity(&sets, delta) {
            continue;
        }
        let mut union = query.clone();
        for d in &chosen {
            union.union_in_place(&d.cells);
        }
        let coverage = union.len();
        let better = coverage > best.coverage
            || (coverage == best.coverage && price < best.price)
            || (coverage == best.coverage && price == best.price && ids < best.datasets);
        if better {
            best = CombinationResult {
                datasets: ids,
                coverage,
                price,
            };
        }
    }
    best
}

/// One row of the value-for-money scoreboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueRanking {
    /// The ranked dataset.
    pub dataset: DatasetId,
    /// Its overlap with the query (cells shared).
    pub overlap: usize,
    /// Its marginal gain over the query (new cells it would add).
    pub gain: usize,
    /// Its price.
    pub price: f64,
    /// Gain per currency unit (`f64::INFINITY` for free datasets with
    /// positive gain).
    pub value: f64,
}

/// Ranks datasets by coverage gained per currency unit with respect to a
/// query.  Unpriced datasets are skipped; datasets with zero gain are ranked
/// last regardless of price.
pub fn rank_by_value(
    candidates: &[DatasetNode],
    query: &CellSet,
    prices: &PriceBook,
) -> Vec<ValueRanking> {
    let mut rows: Vec<ValueRanking> = candidates
        .iter()
        .filter_map(|node| {
            let price = prices.price(node.id)?;
            let overlap = node.cells.intersection_size(query);
            let gain = node.cells.marginal_gain(query);
            let value = if gain == 0 {
                0.0
            } else if price > 0.0 {
                gain as f64 / price
            } else {
                f64::INFINITY
            };
            Some(ValueRanking {
                dataset: node.id,
                overlap,
                gain,
                price,
                value,
            })
        })
        .collect();
    rows.sort_unstable_by(|a, b| {
        b.value
            .total_cmp(&a.value)
            .then(b.gain.cmp(&a.gain))
            .then(a.dataset.cmp(&b.dataset))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budgeted::{budgeted_coverage_search, BudgetedConfig};
    use dits::{DitsLocal, DitsLocalConfig};
    use proptest::prelude::*;
    use spatial::zorder::cell_id;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn cs(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    fn prices_by_coverage(nodes: &[DatasetNode]) -> PriceBook {
        let mut book = PriceBook::new();
        for n in nodes {
            book.set(n.id, n.coverage() as f64);
        }
        book
    }

    #[test]
    fn optimal_combination_respects_all_constraints() {
        let nodes = vec![
            node(0, &[(2, 0), (3, 0)]),
            node(1, &[(4, 0), (5, 0)]),
            node(2, &[(50, 50)]),
        ];
        let prices = prices_by_coverage(&nodes);
        let query = cs(&[(0, 0), (1, 0)]);
        // Budget 4 affords both connected datasets (2 + 2); the far dataset 2
        // is excluded by connectivity regardless of budget.
        let best = optimal_combination(&nodes, &query, &prices, 4.0, 2.0, 3);
        assert_eq!(best.datasets, vec![0, 1]);
        assert_eq!(best.coverage, 6);
        assert_eq!(best.price, 4.0);
        // Budget 2 affords only one of them.
        let tight = optimal_combination(&nodes, &query, &prices, 2.0, 2.0, 3);
        assert_eq!(tight.datasets.len(), 1);
        assert_eq!(tight.coverage, 4);
    }

    #[test]
    fn optimal_combination_of_empty_pool_is_the_query() {
        let prices = PriceBook::new();
        let query = cs(&[(0, 0)]);
        let best = optimal_combination(&[], &query, &prices, 10.0, 1.0, 3);
        assert!(best.datasets.is_empty());
        assert_eq!(best.coverage, 1);
        assert_eq!(best.price, 0.0);
    }

    #[test]
    #[should_panic(expected = "at most 20 candidates")]
    fn optimal_combination_rejects_large_pools() {
        let nodes: Vec<DatasetNode> = (0..21).map(|i| node(i, &[(i, 0)])).collect();
        let _ = optimal_combination(&nodes, &cs(&[(0, 0)]), &PriceBook::new(), 1.0, 1.0, 1);
    }

    #[test]
    fn rank_by_value_orders_by_gain_per_price() {
        let nodes = vec![
            node(0, &[(0, 0), (2, 0)]),         // overlap 1, gain 1
            node(1, &[(3, 0), (4, 0), (5, 0)]), // overlap 0, gain 3
            node(2, &[(0, 0), (1, 0)]),         // fully covered by the query
        ];
        let mut prices = PriceBook::new();
        prices.set(0, 1.0); // value 1.0
        prices.set(1, 6.0); // value 0.5
        prices.set(2, 0.5); // gain 0 -> value 0
        let query = cs(&[(0, 0), (1, 0)]);
        let ranking = rank_by_value(&nodes, &query, &prices);
        assert_eq!(ranking.len(), 3);
        assert_eq!(ranking[0].dataset, 0);
        assert_eq!(ranking[0].value, 1.0);
        assert_eq!(ranking[1].dataset, 1);
        assert_eq!(ranking[2].dataset, 2);
        assert_eq!(ranking[2].value, 0.0);
        assert_eq!(ranking[0].overlap, 1);
        assert_eq!(ranking[1].gain, 3);
    }

    #[test]
    fn rank_by_value_skips_unpriced_and_handles_free_datasets() {
        let nodes = vec![node(0, &[(2, 0)]), node(1, &[(3, 0)])];
        let mut prices = PriceBook::new();
        prices.set(0, 0.0); // free with positive gain -> infinite value, first
        let query = cs(&[(0, 0)]);
        let ranking = rank_by_value(&nodes, &query, &prices);
        assert_eq!(ranking.len(), 1);
        assert_eq!(ranking[0].dataset, 0);
        assert!(ranking[0].value.is_infinite());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_budgeted_greedy_never_beats_the_optimum(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..12, 0u32..12), 1..5), 1..9),
            budget in 1.0f64..20.0,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let prices = prices_by_coverage(&nodes);
            let query = cs(&[(0, 0), (1, 1)]);
            let delta = 4.0;
            let index = DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: 3 });
            let (greedy, _) = budgeted_coverage_search(
                &index, &query, &prices, BudgetedConfig::new(budget, delta));
            let optimum = optimal_combination(&nodes, &query, &prices, budget, delta, nodes.len());
            // The greedy solution is feasible, so the exhaustive optimum is an
            // upper bound on its coverage, and both are bounded below by the
            // query's own coverage.
            prop_assert!(greedy.coverage <= optimum.coverage,
                "greedy {} beats optimum {}", greedy.coverage, optimum.coverage);
            prop_assert!(greedy.coverage >= query.len());
            prop_assert!(optimum.price <= budget + 1e-9);
            // When something affordable is directly connected to the query,
            // the greedy must make progress too (it can always fall back to
            // the best single purchase).
            if optimum.coverage > query.len() && optimum.datasets.len() == 1 {
                prop_assert!(greedy.coverage > query.len(),
                    "greedy made no progress although a single affordable connected dataset exists");
            }
        }
    }
}
