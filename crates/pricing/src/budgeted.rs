//! Budgeted coverage joinable search.
//!
//! The CJSP of the paper limits the result to `k` datasets.  In a marketplace
//! the natural budget is monetary: *"cover as much area as possible for at
//! most B currency units, staying connected to my query"*.  This is the
//! budgeted maximum coverage problem (Khuller, Moss & Naor \[33\]) with the
//! paper's spatial-connectivity constraint layered on top.
//!
//! The solver follows Khuller's recipe adapted to the connectivity
//! constraint:
//!
//! 1. **Cost-benefit greedy** — repeatedly add the affordable, connected
//!    dataset with the best marginal-gain-per-price ratio (ties broken by
//!    dataset id), pruning the candidate scan with DITS-L and the Lemma 4
//!    distance bounds.
//! 2. **Best single purchase** — the single affordable, connected dataset
//!    with the largest gain.
//! 3. Return whichever of the two covers more.
//!
//! Without the connectivity constraint this combination is the classic
//! `(1 − 1/√e)`-approximation; with it the guarantee degrades the same way
//! the paper's Theorem 1 needs its connectivity assumption, but the empirical
//! behaviour (tracked by the benches) mirrors the unbudgeted CoverageSearch.

use crate::model::PriceBook;
use dits::bounds::node_distance_bounds;
use dits::local::{NodeIdx, NodeKind};
use dits::{DatasetNode, DitsLocal, NodeGeometry, SearchStats};
use serde::{Deserialize, Serialize};
use spatial::distance::NeighborProbe;
use spatial::{CellSet, DatasetId};
use std::collections::HashSet;

/// Configuration of a budgeted coverage search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetedConfig {
    /// Monetary budget `B`.
    pub budget: f64,
    /// Connectivity threshold δ (in cell units).
    pub delta: f64,
    /// Optional cap on the number of purchased datasets (defaults to
    /// unlimited — the budget is usually the binding constraint).
    pub max_datasets: Option<usize>,
}

impl BudgetedConfig {
    /// Convenience constructor without a dataset-count cap.
    pub fn new(budget: f64, delta: f64) -> Self {
        Self {
            budget,
            delta,
            max_datasets: None,
        }
    }
}

/// Result of a budgeted coverage search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetedResult {
    /// Purchased datasets in the order they were selected.
    pub datasets: Vec<DatasetId>,
    /// Total coverage `|S_Q ∪ (∪ S_Di)|` after all purchases.
    pub coverage: usize,
    /// Total money spent.
    pub spent: f64,
    /// Remaining budget.
    pub remaining: f64,
    /// Coverage of the query alone, for reference.
    pub query_coverage: usize,
}

/// Runs the budgeted coverage joinable search over a local index.
///
/// Datasets missing from the price book are treated as not for sale and are
/// never selected.
pub fn budgeted_coverage_search(
    index: &DitsLocal,
    query: &CellSet,
    prices: &PriceBook,
    config: BudgetedConfig,
) -> (BudgetedResult, SearchStats) {
    let mut stats = SearchStats::new();
    let query_coverage = query.len();
    let empty = BudgetedResult {
        datasets: Vec::new(),
        coverage: query_coverage,
        spent: 0.0,
        remaining: config.budget,
        query_coverage,
    };
    if query.is_empty() || index.dataset_count() == 0 || config.budget <= 0.0 {
        return (empty, stats);
    }

    let greedy = cost_benefit_greedy(index, query, prices, config, &mut stats);
    let single = best_single_purchase(index, query, prices, config, &mut stats);

    // Khuller's max of the two candidate solutions.
    let best = match single {
        Some(single) if single.coverage > greedy.coverage => single,
        _ => greedy,
    };
    (best, stats)
}

/// Phase 1: the gain-per-price greedy.
fn cost_benefit_greedy(
    index: &DitsLocal,
    query: &CellSet,
    prices: &PriceBook,
    config: BudgetedConfig,
    stats: &mut SearchStats,
) -> BudgetedResult {
    let query_coverage = query.len();
    let mut result = BudgetedResult {
        datasets: Vec::new(),
        coverage: query_coverage,
        spent: 0.0,
        remaining: config.budget,
        query_coverage,
    };
    let mut merged_cells = query.clone();
    let Some(rect) = merged_cells.mbr_cell_space() else {
        return result;
    };
    let mut merged_geometry = NodeGeometry::from_mbr(rect);
    let mut selected: HashSet<DatasetId> = HashSet::new();
    let max_datasets = config.max_datasets.unwrap_or(usize::MAX);

    while result.datasets.len() < max_datasets {
        let probe = NeighborProbe::new(&merged_cells);
        let mut connected: Vec<&DatasetNode> = Vec::new();
        let mut seen: HashSet<DatasetId> = HashSet::new();
        find_connected(
            index,
            index.root(),
            &merged_geometry,
            &probe,
            config.delta,
            &mut connected,
            &mut seen,
            stats,
        );

        // Best gain-per-price ratio among affordable, unselected candidates.
        let mut best: Option<(&DatasetNode, f64, usize, f64)> = None; // (node, price, gain, ratio)
        for node in connected {
            if selected.contains(&node.id) {
                continue;
            }
            let Some(price) = prices.price(node.id) else {
                continue;
            };
            if price > result.remaining {
                continue;
            }
            stats.exact_computations += 1;
            let gain = node.cells.marginal_gain(&merged_cells);
            if gain == 0 {
                continue;
            }
            // Free datasets have an infinite ratio; order them by gain.
            let ratio = if price > 0.0 {
                gain as f64 / price
            } else {
                f64::INFINITY
            };
            let wins = match best {
                None => true,
                Some((current, _, current_gain, current_ratio)) => {
                    ratio > current_ratio
                        || (ratio == current_ratio && gain > current_gain)
                        || (ratio == current_ratio && gain == current_gain && node.id < current.id)
                }
            };
            if wins {
                best = Some((node, price, gain, ratio));
            }
        }

        let Some((node, price, gain, _)) = best else {
            break;
        };
        selected.insert(node.id);
        result.datasets.push(node.id);
        result.spent += price;
        result.remaining = (config.budget - result.spent).max(0.0);
        merged_cells.union_in_place(&node.cells);
        merged_geometry = merged_geometry.union(&node.geometry);
        result.coverage = merged_cells.len();
        debug_assert!(gain > 0);
    }
    result
}

/// Phase 2: the single best affordable purchase directly connected to the
/// query.
fn best_single_purchase(
    index: &DitsLocal,
    query: &CellSet,
    prices: &PriceBook,
    config: BudgetedConfig,
    stats: &mut SearchStats,
) -> Option<BudgetedResult> {
    if config.max_datasets == Some(0) {
        return None;
    }
    let query_coverage = query.len();
    let rect = query.mbr_cell_space()?;
    let geometry = NodeGeometry::from_mbr(rect);
    let probe = NeighborProbe::new(query);
    let mut connected: Vec<&DatasetNode> = Vec::new();
    let mut seen: HashSet<DatasetId> = HashSet::new();
    find_connected(
        index,
        index.root(),
        &geometry,
        &probe,
        config.delta,
        &mut connected,
        &mut seen,
        stats,
    );
    let mut best: Option<(&DatasetNode, f64, usize)> = None;
    for node in connected {
        let Some(price) = prices.price(node.id) else {
            continue;
        };
        if price > config.budget {
            continue;
        }
        stats.exact_computations += 1;
        let gain = node.cells.marginal_gain(query);
        if gain == 0 {
            continue;
        }
        let wins = match best {
            None => true,
            Some((current, _, current_gain)) => {
                gain > current_gain || (gain == current_gain && node.id < current.id)
            }
        };
        if wins {
            best = Some((node, price, gain));
        }
    }
    best.map(|(node, price, gain)| BudgetedResult {
        datasets: vec![node.id],
        coverage: query_coverage + gain,
        spent: price,
        remaining: (config.budget - price).max(0.0),
        query_coverage,
    })
}

/// Collects every dataset node within δ of the probe, pruning subtrees with
/// the Lemma 4 bounds (the same traversal CoverageSearch uses, re-implemented
/// here over the public tree API).
#[allow(clippy::too_many_arguments)]
fn find_connected<'a>(
    index: &'a DitsLocal,
    node_idx: NodeIdx,
    probe_geometry: &NodeGeometry,
    probe: &NeighborProbe,
    delta: f64,
    out: &mut Vec<&'a DatasetNode>,
    seen: &mut HashSet<DatasetId>,
    stats: &mut SearchStats,
) {
    let node = index.node(node_idx);
    stats.nodes_visited += 1;
    let (lb, ub) = node_distance_bounds(&node.geometry, probe_geometry);
    if lb > delta {
        stats.nodes_pruned += 1;
        return;
    }
    match &node.kind {
        NodeKind::Leaf { entries, .. } => {
            for entry in entries {
                if seen.contains(&entry.id) {
                    continue;
                }
                let (elb, eub) = node_distance_bounds(&entry.geometry, probe_geometry);
                let connected = if eub <= delta || ub <= delta {
                    true
                } else if elb > delta {
                    false
                } else {
                    stats.exact_computations += 1;
                    probe.within(&entry.cells, delta)
                };
                if connected && seen.insert(entry.id) {
                    out.push(entry);
                    stats.candidates += 1;
                }
            }
        }
        NodeKind::Internal { left, right } => {
            find_connected(index, *left, probe_geometry, probe, delta, out, seen, stats);
            find_connected(
                index,
                *right,
                probe_geometry,
                probe,
                delta,
                out,
                seen,
                stats,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dits::DitsLocalConfig;
    use proptest::prelude::*;
    use spatial::satisfies_spatial_connectivity;
    use spatial::zorder::cell_id;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn cs(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    /// A chain of datasets going right from the query, each covering 2 cells.
    fn chain_index() -> (DitsLocal, Vec<DatasetNode>) {
        let nodes: Vec<DatasetNode> = (0..6)
            .map(|i| {
                let x = (i + 1) * 2;
                node(i, &[(x, 0), (x + 1, 0)])
            })
            .collect();
        (
            DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: 2 }),
            nodes,
        )
    }

    fn uniform_prices(ids: impl IntoIterator<Item = DatasetId>, price: f64) -> PriceBook {
        let mut book = PriceBook::new();
        for id in ids {
            book.set(id, price);
        }
        book
    }

    #[test]
    fn budget_limits_the_number_of_purchases() {
        let (index, _) = chain_index();
        let query = cs(&[(0, 0), (1, 0)]);
        let prices = uniform_prices(0..6, 10.0);
        // Budget 25 affords exactly two datasets at 10 each.
        let (result, _) =
            budgeted_coverage_search(&index, &query, &prices, BudgetedConfig::new(25.0, 2.0));
        assert_eq!(result.datasets.len(), 2);
        assert!(result.spent <= 25.0);
        assert_eq!(result.coverage, 2 + 4);
        assert!((result.remaining - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_buys_nothing() {
        let (index, _) = chain_index();
        let query = cs(&[(0, 0)]);
        let prices = uniform_prices(0..6, 1.0);
        let (result, _) =
            budgeted_coverage_search(&index, &query, &prices, BudgetedConfig::new(0.0, 2.0));
        assert!(result.datasets.is_empty());
        assert_eq!(result.coverage, 1);
        assert_eq!(result.spent, 0.0);
    }

    #[test]
    fn unpriced_datasets_are_not_for_sale() {
        let (index, _) = chain_index();
        let query = cs(&[(0, 0), (1, 0)]);
        // Only dataset 0 is on offer.
        let prices = uniform_prices([0], 1.0);
        let (result, _) =
            budgeted_coverage_search(&index, &query, &prices, BudgetedConfig::new(100.0, 2.0));
        assert_eq!(result.datasets, vec![0]);
    }

    #[test]
    fn cost_benefit_prefers_cheap_coverage_but_single_buy_can_win() {
        // Dataset 0: 2 new cells for 1.0 (ratio 2.0).
        // Dataset 1: 10 new cells for 8.0 (ratio 1.25).
        // Budget 8: the ratio greedy buys 0 first (then cannot afford 1),
        // covering 2; the best single purchase buys 1, covering 10 — the
        // Khuller max must return dataset 1.
        let nodes = vec![
            node(0, &[(2, 0), (2, 1)]),
            node(
                1,
                &[
                    (0, 2),
                    (1, 2),
                    (2, 2),
                    (3, 2),
                    (4, 2),
                    (0, 3),
                    (1, 3),
                    (2, 3),
                    (3, 3),
                    (4, 3),
                ],
            ),
        ];
        let index = DitsLocal::build(nodes, DitsLocalConfig::default());
        let query = cs(&[(0, 0), (1, 0)]);
        let mut prices = PriceBook::new();
        prices.set(0, 1.0);
        prices.set(1, 8.0);
        let (result, _) =
            budgeted_coverage_search(&index, &query, &prices, BudgetedConfig::new(8.0, 3.0));
        assert_eq!(result.datasets, vec![1]);
        assert_eq!(result.coverage, 12);
        assert_eq!(result.spent, 8.0);
    }

    #[test]
    fn connectivity_constraint_excludes_far_datasets() {
        let nodes = vec![node(0, &[(2, 0)]), node(1, &[(50, 50), (51, 50)])];
        let index = DitsLocal::build(nodes, DitsLocalConfig::default());
        let query = cs(&[(0, 0)]);
        let prices = uniform_prices(0..2, 1.0);
        let (result, _) =
            budgeted_coverage_search(&index, &query, &prices, BudgetedConfig::new(100.0, 3.0));
        // Only the nearby dataset is connected; the far one is excluded even
        // though it would add more coverage.
        assert_eq!(result.datasets, vec![0]);
    }

    #[test]
    fn max_datasets_cap_is_respected() {
        let (index, _) = chain_index();
        let query = cs(&[(0, 0), (1, 0)]);
        let prices = uniform_prices(0..6, 1.0);
        let (result, _) = budgeted_coverage_search(
            &index,
            &query,
            &prices,
            BudgetedConfig {
                budget: 100.0,
                delta: 2.0,
                max_datasets: Some(3),
            },
        );
        assert_eq!(result.datasets.len(), 3);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let index = DitsLocal::build(Vec::new(), DitsLocalConfig::default());
        let prices = PriceBook::new();
        let (r, _) = budgeted_coverage_search(
            &index,
            &cs(&[(0, 0)]),
            &prices,
            BudgetedConfig::new(10.0, 1.0),
        );
        assert!(r.datasets.is_empty());
        let (index, _) = chain_index();
        let (r, _) = budgeted_coverage_search(
            &index,
            &CellSet::new(),
            &prices,
            BudgetedConfig::new(10.0, 1.0),
        );
        assert!(r.datasets.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_budget_and_connectivity_are_always_respected(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..24, 0u32..24), 1..6), 1..25),
            budget in 0.0f64..30.0,
            delta in 1.0f64..6.0,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let index = DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: 3 });
            // Price each dataset by its coverage.
            let mut prices = PriceBook::new();
            for n in &nodes {
                prices.set(n.id, n.coverage() as f64);
            }
            let query = cs(&[(0, 0), (1, 1)]);
            let (result, _) = budgeted_coverage_search(
                &index,
                &query,
                &prices,
                BudgetedConfig::new(budget, delta),
            );
            // Spending never exceeds the budget and matches the price book.
            prop_assert!(result.spent <= budget + 1e-9);
            prop_assert_eq!(prices.total(&result.datasets), Some(result.spent));
            // Coverage bookkeeping is consistent.
            let mut union = query.clone();
            for id in &result.datasets {
                let node = nodes.iter().find(|n| n.id == *id).unwrap();
                union.union_in_place(&node.cells);
            }
            prop_assert_eq!(union.len(), result.coverage);
            // The purchases together with the query stay connected.
            let chosen: Vec<&CellSet> = nodes
                .iter()
                .filter(|n| result.datasets.contains(&n.id))
                .map(|n| &n.cells)
                .collect();
            let mut sets = chosen.clone();
            sets.push(&query);
            prop_assert!(satisfies_spatial_connectivity(&sets, delta));
        }
    }
}
