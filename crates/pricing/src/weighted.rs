//! Weighted coverage joinable search.
//!
//! CJSP counts every covered cell equally.  Real planning tasks weight cells
//! by value — commuter demand, population density, incident rates — so the
//! weighted maximum coverage problem (\[48\] in the paper's related work)
//! asks for the `k` connected datasets maximising the *total weight* of the
//! covered cells instead of their count.
//!
//! [`CellWeights`] assigns a weight to every cell (with a default for
//! unlisted cells), and [`weighted_coverage_search`] runs the same
//! merge-based greedy as the paper's CoverageSearch with the weighted
//! marginal gain.

use dits::bounds::node_distance_bounds;
use dits::local::{NodeIdx, NodeKind};
use dits::{DatasetNode, DitsLocal, NodeGeometry, SearchStats};
use serde::{Deserialize, Serialize};
use spatial::distance::NeighborProbe;
use spatial::{CellId, CellSet, DatasetId};
use std::collections::{HashMap, HashSet};

/// Per-cell weights with a default for cells not explicitly listed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellWeights {
    weights: HashMap<CellId, f64>,
    default: f64,
}

impl CellWeights {
    /// Uniform weights: every cell weighs `default`.  With `default = 1.0`
    /// the weighted search degenerates to the unweighted CJSP objective.
    pub fn uniform(default: f64) -> Self {
        Self {
            weights: HashMap::new(),
            default: default.max(0.0),
        }
    }

    /// Builds weights from explicit `(cell, weight)` pairs plus a default for
    /// everything else.
    pub fn from_pairs<I: IntoIterator<Item = (CellId, f64)>>(pairs: I, default: f64) -> Self {
        Self {
            weights: pairs.into_iter().map(|(c, w)| (c, w.max(0.0))).collect(),
            default: default.max(0.0),
        }
    }

    /// Sets the weight of one cell.
    pub fn set(&mut self, cell: CellId, weight: f64) {
        self.weights.insert(cell, weight.max(0.0));
    }

    /// The weight of a cell.
    pub fn weight(&self, cell: CellId) -> f64 {
        self.weights.get(&cell).copied().unwrap_or(self.default)
    }

    /// Total weight of every cell in a set.
    pub fn total(&self, cells: &CellSet) -> f64 {
        cells.iter().map(|c| self.weight(c)).sum()
    }

    /// Weighted marginal gain of adding `candidate` to an accumulated union:
    /// the total weight of the candidate's cells not already covered.
    pub fn marginal_gain(&self, candidate: &CellSet, accumulated: &CellSet) -> f64 {
        candidate
            .iter()
            .filter(|&c| !accumulated.contains(c))
            .map(|c| self.weight(c))
            .sum()
    }

    /// Number of explicitly weighted cells.
    pub fn explicit_len(&self) -> usize {
        self.weights.len()
    }

    /// The default weight of unlisted cells.
    pub fn default_weight(&self) -> f64 {
        self.default
    }
}

/// Configuration of a weighted coverage search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedConfig {
    /// Maximum number of result datasets `k`.
    pub k: usize,
    /// Connectivity threshold δ (in cell units).
    pub delta: f64,
}

impl WeightedConfig {
    /// Convenience constructor.
    pub fn new(k: usize, delta: f64) -> Self {
        Self { k, delta }
    }
}

/// Result of a weighted coverage search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedResult {
    /// Selected datasets in greedy order.
    pub datasets: Vec<DatasetId>,
    /// Total weight of the covered cells (query plus selections).
    pub covered_weight: f64,
    /// Number of covered cells (the unweighted coverage, for comparison).
    pub coverage: usize,
    /// Per-iteration weighted gains.
    pub gains: Vec<f64>,
}

/// Runs the weighted coverage joinable search: greedy by weighted marginal
/// gain over the datasets connected to the running (merged) result.
pub fn weighted_coverage_search(
    index: &DitsLocal,
    query: &CellSet,
    weights: &CellWeights,
    config: WeightedConfig,
) -> (WeightedResult, SearchStats) {
    let mut stats = SearchStats::new();
    let mut result = WeightedResult {
        datasets: Vec::new(),
        covered_weight: weights.total(query),
        coverage: query.len(),
        gains: Vec::new(),
    };
    if config.k == 0 || query.is_empty() || index.dataset_count() == 0 {
        return (result, stats);
    }
    let mut merged_cells = query.clone();
    let Some(rect) = merged_cells.mbr_cell_space() else {
        return (result, stats);
    };
    let mut merged_geometry = NodeGeometry::from_mbr(rect);
    let mut selected: HashSet<DatasetId> = HashSet::new();

    while result.datasets.len() < config.k {
        let probe = NeighborProbe::new(&merged_cells);
        let mut connected: Vec<&DatasetNode> = Vec::new();
        let mut seen: HashSet<DatasetId> = HashSet::new();
        find_connected(
            index,
            index.root(),
            &merged_geometry,
            &probe,
            config.delta,
            &mut connected,
            &mut seen,
            &mut stats,
        );

        let mut best: Option<(&DatasetNode, f64)> = None;
        for node in connected {
            if selected.contains(&node.id) {
                continue;
            }
            stats.exact_computations += 1;
            let gain = weights.marginal_gain(&node.cells, &merged_cells);
            let wins = match best {
                None => gain > 0.0,
                Some((current, current_gain)) => {
                    gain > current_gain || (gain == current_gain && node.id < current.id)
                }
            };
            if wins && gain > 0.0 {
                best = Some((node, gain));
            }
        }
        let Some((node, gain)) = best else { break };
        selected.insert(node.id);
        result.datasets.push(node.id);
        result.gains.push(gain);
        result.covered_weight += gain;
        merged_cells.union_in_place(&node.cells);
        merged_geometry = merged_geometry.union(&node.geometry);
        result.coverage = merged_cells.len();
    }
    (result, stats)
}

/// Connectivity-constrained candidate collection (Lemma 4 pruning), shared
/// shape with the budgeted solver.
#[allow(clippy::too_many_arguments)]
fn find_connected<'a>(
    index: &'a DitsLocal,
    node_idx: NodeIdx,
    probe_geometry: &NodeGeometry,
    probe: &NeighborProbe,
    delta: f64,
    out: &mut Vec<&'a DatasetNode>,
    seen: &mut HashSet<DatasetId>,
    stats: &mut SearchStats,
) {
    let node = index.node(node_idx);
    stats.nodes_visited += 1;
    let (lb, ub) = node_distance_bounds(&node.geometry, probe_geometry);
    if lb > delta {
        stats.nodes_pruned += 1;
        return;
    }
    match &node.kind {
        NodeKind::Leaf { entries, .. } => {
            for entry in entries {
                if seen.contains(&entry.id) {
                    continue;
                }
                let (elb, eub) = node_distance_bounds(&entry.geometry, probe_geometry);
                let connected = if eub <= delta || ub <= delta {
                    true
                } else if elb > delta {
                    false
                } else {
                    stats.exact_computations += 1;
                    probe.within(&entry.cells, delta)
                };
                if connected && seen.insert(entry.id) {
                    out.push(entry);
                    stats.candidates += 1;
                }
            }
        }
        NodeKind::Internal { left, right } => {
            find_connected(index, *left, probe_geometry, probe, delta, out, seen, stats);
            find_connected(
                index,
                *right,
                probe_geometry,
                probe,
                delta,
                out,
                seen,
                stats,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dits::{coverage_search, CoverageConfig, DitsLocalConfig};
    use proptest::prelude::*;
    use spatial::zorder::cell_id;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn cs(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    #[test]
    fn cell_weights_lookup_and_totals() {
        let mut w = CellWeights::from_pairs([(cell_id(0, 0), 5.0), (cell_id(1, 0), 2.0)], 1.0);
        assert_eq!(w.weight(cell_id(0, 0)), 5.0);
        assert_eq!(w.weight(cell_id(9, 9)), 1.0);
        assert_eq!(w.default_weight(), 1.0);
        assert_eq!(w.explicit_len(), 2);
        w.set(cell_id(2, 0), -3.0); // negative weights are clamped to zero
        assert_eq!(w.weight(cell_id(2, 0)), 0.0);
        let s = cs(&[(0, 0), (1, 0), (2, 0)]);
        assert_eq!(w.total(&s), 7.0);
        // Marginal gain ignores cells already covered.
        let covered = cs(&[(0, 0)]);
        assert_eq!(w.marginal_gain(&s, &covered), 2.0);
    }

    #[test]
    fn uniform_weights_match_unweighted_coverage_search() {
        let nodes: Vec<DatasetNode> = (0..20)
            .map(|i| {
                let x = (i % 5) * 2;
                let y = (i / 5) * 2;
                node(i, &[(x, y), (x + 1, y)])
            })
            .collect();
        let index = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 4 });
        let query = cs(&[(0, 0)]);
        let weights = CellWeights::uniform(1.0);
        let (weighted, _) =
            weighted_coverage_search(&index, &query, &weights, WeightedConfig::new(4, 2.5));
        let (unweighted, _) = coverage_search(&index, &query, CoverageConfig::new(4, 2.5));
        // With unit weights both objectives coincide.
        assert_eq!(weighted.coverage, unweighted.coverage);
        assert_eq!(weighted.covered_weight, unweighted.coverage as f64);
        assert_eq!(weighted.datasets, unweighted.datasets);
    }

    #[test]
    fn high_weight_cells_redirect_the_greedy_choice() {
        // Dataset 0 covers 3 ordinary cells; dataset 1 covers a single cell
        // of weight 100.  Both are connected to the query.
        let nodes = vec![node(0, &[(2, 0), (2, 1), (2, 2)]), node(1, &[(0, 2)])];
        let index = DitsLocal::build(nodes, DitsLocalConfig::default());
        let query = cs(&[(0, 0), (1, 0)]);
        let weights = CellWeights::from_pairs([(cell_id(0, 2), 100.0)], 1.0);
        let (result, _) =
            weighted_coverage_search(&index, &query, &weights, WeightedConfig::new(1, 2.0));
        assert_eq!(result.datasets, vec![1]);
        assert_eq!(result.gains, vec![100.0]);
        // The unweighted search would have preferred dataset 0.
        let (unweighted, _) = coverage_search(&index, &query, CoverageConfig::new(1, 2.0));
        assert_eq!(unweighted.datasets, vec![0]);
    }

    #[test]
    fn zero_weight_cells_contribute_nothing() {
        let nodes = vec![node(0, &[(2, 0), (3, 0)])];
        let index = DitsLocal::build(nodes, DitsLocalConfig::default());
        let query = cs(&[(0, 0), (1, 0)]);
        let weights = CellWeights::uniform(0.0);
        let (result, _) =
            weighted_coverage_search(&index, &query, &weights, WeightedConfig::new(2, 2.0));
        // Nothing has positive weighted gain, so nothing is selected.
        assert!(result.datasets.is_empty());
        assert_eq!(result.covered_weight, 0.0);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let index = DitsLocal::build(Vec::new(), DitsLocalConfig::default());
        let weights = CellWeights::uniform(1.0);
        let (r, _) = weighted_coverage_search(
            &index,
            &cs(&[(0, 0)]),
            &weights,
            WeightedConfig::new(2, 1.0),
        );
        assert!(r.datasets.is_empty());
        let nodes = vec![node(0, &[(0, 0)])];
        let index = DitsLocal::build(nodes, DitsLocalConfig::default());
        let (r, _) = weighted_coverage_search(
            &index,
            &CellSet::new(),
            &weights,
            WeightedConfig::new(2, 1.0),
        );
        assert!(r.datasets.is_empty());
        let (r, _) = weighted_coverage_search(
            &index,
            &cs(&[(0, 0)]),
            &weights,
            WeightedConfig::new(0, 1.0),
        );
        assert!(r.datasets.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_weighted_gains_sum_to_total(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..20, 0u32..20), 1..6), 1..20),
            k in 1usize..5,
            delta in 1.0f64..5.0,
            default_weight in 0.1f64..3.0,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let index = DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: 3 });
            let weights = CellWeights::uniform(default_weight);
            let query = cs(&[(0, 0), (1, 1)]);
            let (result, _) =
                weighted_coverage_search(&index, &query, &weights, WeightedConfig::new(k, delta));
            prop_assert!(result.datasets.len() <= k);
            // covered_weight equals query weight plus the per-iteration gains.
            let expected = weights.total(&query) + result.gains.iter().sum::<f64>();
            prop_assert!((result.covered_weight - expected).abs() < 1e-6);
            // And it equals the weight of the actual union.
            let mut union = query.clone();
            for id in &result.datasets {
                let n = nodes.iter().find(|n| n.id == *id).unwrap();
                union.union_in_place(&n.cells);
            }
            prop_assert!((weights.total(&union) - result.covered_weight).abs() < 1e-6);
            prop_assert_eq!(union.len(), result.coverage);
        }
    }
}
