//! Spatial connectivity (Definitions 7–9).
//!
//! * Two cell-based datasets are **directly connected** when their dataset
//!   distance is at most the threshold δ.
//! * They are **indirectly connected** when a chain of pairwise directly
//!   connected datasets links them.
//! * A collection satisfies **spatial connectivity** when every pair is
//!   directly or indirectly connected — i.e. the "directly connected" graph
//!   over the collection has a single connected component.
//!
//! CJSP (Definition 11) constrains the result set `S* ∪ {S_Q}` to satisfy
//! spatial connectivity, and the CoverageSearch greedy maintains it
//! incrementally; this module provides both the incremental graph
//! ([`ConnectivityGraph`]) and one-shot predicates used by tests and the SG
//! baseline.

use crate::cellset::CellSet;
use crate::distance::dataset_distance_within;

/// Returns `true` when the two datasets are directly connected under
/// threshold `delta` (Definition 7).
pub fn is_directly_connected(a: &CellSet, b: &CellSet, delta: f64) -> bool {
    dataset_distance_within(a, b, delta)
}

/// Checks whether a collection of cell sets satisfies spatial connectivity
/// (Definition 9): every pair is directly or indirectly connected.
///
/// Empty and singleton collections trivially satisfy the property.
pub fn satisfies_spatial_connectivity(sets: &[&CellSet], delta: f64) -> bool {
    let n = sets.len();
    if n <= 1 {
        return true;
    }
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if uf.find(i) != uf.find(j) && is_directly_connected(sets[i], sets[j], delta) {
                uf.union(i, j);
            }
        }
    }
    uf.component_count() == 1
}

/// Incremental union-find over a growing collection of datasets, used to
/// maintain the connectivity constraint while the greedy algorithms add one
/// result at a time.
#[derive(Debug, Clone)]
pub struct ConnectivityGraph {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl ConnectivityGraph {
    /// Creates a graph with `n` isolated members.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Adds a new isolated member and returns its index.
    pub fn add_member(&mut self) -> usize {
        let idx = self.parent.len();
        self.parent.push(idx);
        self.rank.push(0);
        self.components += 1;
        idx
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` when the graph has no members.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Connects two members.
    pub fn connect(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        self.components -= 1;
        if self.rank[ra] < self.rank[rb] {
            self.parent[ra] = rb;
        } else if self.rank[ra] > self.rank[rb] {
            self.parent[rb] = ra;
        } else {
            self.parent[rb] = ra;
            self.rank[ra] += 1;
        }
    }

    /// Representative of a member's connected component.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Returns `true` when the two members are in the same component.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Returns `true` when the whole collection forms a single component
    /// (spatial connectivity).
    pub fn is_fully_connected(&self) -> bool {
        self.components <= 1
    }
}

/// Private union-find used by the one-shot predicate.
struct UnionFind {
    parent: Vec<usize>,
    components: usize,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            components: n,
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
            self.components -= 1;
        }
    }

    fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zorder::cell_id;
    use proptest::prelude::*;

    fn set(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    #[test]
    fn paper_example3_connectivity() {
        // δ = 1: D1 directly connected to D2 and D3, D2 indirectly connected
        // to D3, so {D1, D2, D3} satisfies spatial connectivity.
        let d1 = CellSet::from_cells([9u64, 11]);
        let d2 = CellSet::from_cells([1u64, 3]);
        let d3 = CellSet::from_cells([12u64, 13]);
        assert!(is_directly_connected(&d1, &d2, 1.0));
        assert!(is_directly_connected(&d1, &d3, 1.0));
        assert!(!is_directly_connected(&d2, &d3, 1.0));
        assert!(satisfies_spatial_connectivity(&[&d1, &d2, &d3], 1.0));
        // Without the intermediary D1, D2 and D3 are not connected at δ = 1.
        assert!(!satisfies_spatial_connectivity(&[&d2, &d3], 1.0));
        // But they are at δ = sqrt(2).
        assert!(satisfies_spatial_connectivity(&[&d2, &d3], 2f64.sqrt()));
    }

    #[test]
    fn trivial_collections_are_connected() {
        let d = set(&[(0, 0)]);
        assert!(satisfies_spatial_connectivity(&[], 0.0));
        assert!(satisfies_spatial_connectivity(&[&d], 0.0));
    }

    #[test]
    fn chain_connectivity_requires_every_link() {
        // Three sets along a line, consecutive ones 2 apart, ends 4 apart.
        let a = set(&[(0, 0)]);
        let b = set(&[(2, 0)]);
        let c = set(&[(4, 0)]);
        assert!(satisfies_spatial_connectivity(&[&a, &b, &c], 2.0));
        // Remove the middle link: ends are 4 apart > δ.
        assert!(!satisfies_spatial_connectivity(&[&a, &c], 2.0));
    }

    #[test]
    fn graph_tracks_components_incrementally() {
        let mut g = ConnectivityGraph::new(3);
        assert_eq!(g.component_count(), 3);
        assert!(!g.is_fully_connected());
        g.connect(0, 1);
        assert_eq!(g.component_count(), 2);
        assert!(g.connected(0, 1));
        assert!(!g.connected(0, 2));
        let d = g.add_member();
        assert_eq!(d, 3);
        assert_eq!(g.component_count(), 3);
        g.connect(2, 3);
        g.connect(1, 2);
        assert!(g.is_fully_connected());
        // Connecting already-connected members is a no-op.
        g.connect(0, 3);
        assert_eq!(g.component_count(), 1);
    }

    #[test]
    fn empty_graph_is_fully_connected() {
        let g = ConnectivityGraph::new(0);
        assert!(g.is_empty());
        assert!(g.is_fully_connected());
    }

    proptest! {
        #[test]
        fn prop_direct_connection_is_symmetric(
            a in proptest::collection::vec((0u32..32, 0u32..32), 1..20),
            b in proptest::collection::vec((0u32..32, 0u32..32), 1..20),
            delta in 0.0f64..20.0,
        ) {
            let sa = set(&a);
            let sb = set(&b);
            prop_assert_eq!(
                is_directly_connected(&sa, &sb, delta),
                is_directly_connected(&sb, &sa, delta)
            );
        }

        #[test]
        fn prop_connectivity_monotone_in_delta(
            sets in proptest::collection::vec(
                proptest::collection::vec((0u32..24, 0u32..24), 1..8), 2..6),
            delta in 0.0f64..10.0,
        ) {
            let owned: Vec<CellSet> = sets.iter().map(|s| set(s)).collect();
            let refs: Vec<&CellSet> = owned.iter().collect();
            if satisfies_spatial_connectivity(&refs, delta) {
                // A larger threshold can only keep the collection connected.
                prop_assert!(satisfies_spatial_connectivity(&refs, delta + 5.0));
            }
        }
    }
}
