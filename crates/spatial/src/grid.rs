//! Grid partitioning of a bounded 2-D space (Definition 4).
//!
//! A [`Grid`] divides the space containing all datasets into `2^θ × 2^θ`
//! uniform cells.  Points are mapped to cell coordinates
//! `((x − x₀)/ν, (y − y₀)/µ)` where `(x₀, y₀)` is the bottom-left corner of
//! the space and `ν`/`µ` are the cell width/height, and then to an integer
//! cell ID through the z-order curve.

use crate::error::SpatialError;
use crate::mbr::Mbr;
use crate::point::Point;
use crate::zorder::{cell_coords, cell_id, CellId};
use serde::{Deserialize, Serialize};

/// Configuration of a grid: the bounded space plus the resolution θ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Bottom-left corner of the whole 2-D space.
    pub origin: Point,
    /// Width of the whole space (`w` in the paper).
    pub width: f64,
    /// Height of the whole space (`h` in the paper).
    pub height: f64,
    /// Resolution θ: the grid has `2^θ × 2^θ` cells.
    pub resolution: u32,
}

impl GridConfig {
    /// A grid covering the whole longitude/latitude globe, the configuration
    /// used by the paper's experiments ("if we divide the globe into a
    /// 2^12 × 2^12 grid, each cell's area is about 10 km × 5 km").
    pub fn global(resolution: u32) -> Self {
        Self {
            origin: Point::new(-180.0, -90.0),
            width: 360.0,
            height: 180.0,
            resolution,
        }
    }
}

/// A `2^θ × 2^θ` uniform grid over a bounded space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    config: GridConfig,
    /// Number of cells per dimension (`2^θ`).
    side: u32,
    /// Cell width ν.
    cell_width: f64,
    /// Cell height µ.
    cell_height: f64,
}

impl Grid {
    /// Builds a grid from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::InvalidResolution`] when `θ ∉ [1, 31]` and
    /// [`SpatialError::DegenerateSpace`] when the space has non-positive
    /// width or height.
    pub fn new(config: GridConfig) -> Result<Self, SpatialError> {
        if config.resolution == 0 || config.resolution > 31 {
            return Err(SpatialError::InvalidResolution(config.resolution));
        }
        if config.width <= 0.0 || config.height <= 0.0 {
            return Err(SpatialError::DegenerateSpace {
                width: config.width,
                height: config.height,
            });
        }
        let side = 1u32 << config.resolution;
        Ok(Self {
            config,
            side,
            cell_width: config.width / side as f64,
            cell_height: config.height / side as f64,
        })
    }

    /// A grid over the longitude/latitude globe at resolution θ.
    pub fn global(resolution: u32) -> Result<Self, SpatialError> {
        Self::new(GridConfig::global(resolution))
    }

    /// The grid's configuration.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// Resolution θ.
    pub fn resolution(&self) -> u32 {
        self.config.resolution
    }

    /// Number of cells along each dimension (`2^θ`).
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Total number of cells (`4^θ`).
    pub fn cell_count(&self) -> u64 {
        (self.side as u64) * (self.side as u64)
    }

    /// Width ν of each cell.
    pub fn cell_width(&self) -> f64 {
        self.cell_width
    }

    /// Height µ of each cell.
    pub fn cell_height(&self) -> f64 {
        self.cell_height
    }

    /// Maps a point to its `(X, Y)` cell coordinates, clamping points on the
    /// upper/right border into the last cell so the closed space is fully
    /// covered.
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::PointOutOfBounds`] for points outside the
    /// bounded space.
    pub fn locate(&self, p: &Point) -> Result<(u32, u32), SpatialError> {
        let ox = self.config.origin.x;
        let oy = self.config.origin.y;
        if !p.is_finite()
            || p.x < ox
            || p.y < oy
            || p.x > ox + self.config.width
            || p.y > oy + self.config.height
        {
            return Err(SpatialError::PointOutOfBounds { x: p.x, y: p.y });
        }
        let cx = ((p.x - ox) / self.cell_width) as u32;
        let cy = ((p.y - oy) / self.cell_height) as u32;
        Ok((cx.min(self.side - 1), cy.min(self.side - 1)))
    }

    /// Maps a point to its z-order cell ID.
    pub fn cell_of(&self, p: &Point) -> Result<CellId, SpatialError> {
        let (x, y) = self.locate(p)?;
        Ok(cell_id(x, y))
    }

    /// Geometric center of a cell, back in the original coordinate space.
    pub fn cell_center(&self, cell: CellId) -> Point {
        let (x, y) = cell_coords(cell);
        Point::new(
            self.config.origin.x + (x as f64 + 0.5) * self.cell_width,
            self.config.origin.y + (y as f64 + 0.5) * self.cell_height,
        )
    }

    /// The MBR (in the original coordinate space) of a cell.
    pub fn cell_mbr(&self, cell: CellId) -> Mbr {
        let (x, y) = cell_coords(cell);
        let min = Point::new(
            self.config.origin.x + x as f64 * self.cell_width,
            self.config.origin.y + y as f64 * self.cell_height,
        );
        let max = Point::new(min.x + self.cell_width, min.y + self.cell_height);
        Mbr::new(min, max)
    }

    /// Converts an MBR in the original coordinate space into an MBR in *cell
    /// coordinate* space (used when mixing sources indexed at different
    /// resolutions through the global index).
    pub fn mbr_to_cell_space(&self, mbr: &Mbr) -> Mbr {
        let lo = self.locate(&mbr.min).unwrap_or((0, 0));
        let hi = self
            .locate(&mbr.max)
            .unwrap_or((self.side - 1, self.side - 1));
        Mbr::new(
            Point::new(lo.0 as f64, lo.1 as f64),
            Point::new(hi.0 as f64, hi.1 as f64),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit_grid(theta: u32) -> Grid {
        Grid::new(GridConfig {
            origin: Point::new(0.0, 0.0),
            width: 1.0,
            height: 1.0,
            resolution: theta,
        })
        .unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(matches!(
            Grid::new(GridConfig {
                origin: Point::new(0.0, 0.0),
                width: 1.0,
                height: 1.0,
                resolution: 0
            }),
            Err(SpatialError::InvalidResolution(0))
        ));
        assert!(matches!(
            Grid::new(GridConfig {
                origin: Point::new(0.0, 0.0),
                width: 1.0,
                height: 1.0,
                resolution: 32
            }),
            Err(SpatialError::InvalidResolution(32))
        ));
        assert!(matches!(
            Grid::new(GridConfig {
                origin: Point::new(0.0, 0.0),
                width: 0.0,
                height: 1.0,
                resolution: 4
            }),
            Err(SpatialError::DegenerateSpace { .. })
        ));
    }

    #[test]
    fn cell_geometry() {
        let g = unit_grid(2); // 4x4 cells of 0.25 x 0.25
        assert_eq!(g.side(), 4);
        assert_eq!(g.cell_count(), 16);
        assert_eq!(g.cell_width(), 0.25);
        assert_eq!(g.cell_height(), 0.25);
        assert_eq!(g.locate(&Point::new(0.1, 0.1)).unwrap(), (0, 0));
        assert_eq!(g.locate(&Point::new(0.9, 0.1)).unwrap(), (3, 0));
        // Upper border clamps into the last cell.
        assert_eq!(g.locate(&Point::new(1.0, 1.0)).unwrap(), (3, 3));
        assert!(g.locate(&Point::new(1.01, 0.5)).is_err());
        assert!(g.locate(&Point::new(f64::NAN, 0.5)).is_err());
    }

    #[test]
    fn cell_of_matches_fig2_numbering() {
        let g = unit_grid(2);
        // Bottom-left cell id 0, its right neighbour id 1, the cell above id 2.
        assert_eq!(g.cell_of(&Point::new(0.05, 0.05)).unwrap(), 0);
        assert_eq!(g.cell_of(&Point::new(0.30, 0.05)).unwrap(), 1);
        assert_eq!(g.cell_of(&Point::new(0.05, 0.30)).unwrap(), 2);
        assert_eq!(g.cell_of(&Point::new(0.30, 0.30)).unwrap(), 3);
    }

    #[test]
    fn cell_center_and_mbr_are_consistent() {
        let g = unit_grid(3);
        for id in 0..g.cell_count() {
            let c = g.cell_center(id);
            let m = g.cell_mbr(id);
            assert!(m.contains_point(&c));
            assert_eq!(g.cell_of(&c).unwrap(), id);
        }
    }

    #[test]
    fn global_grid_covers_the_planet() {
        let g = Grid::global(12).unwrap();
        assert!(g.cell_of(&Point::new(-179.9, -89.9)).is_ok());
        assert!(g.cell_of(&Point::new(179.9, 89.9)).is_ok());
        assert!(g.cell_of(&Point::new(116.36422, 39.88781)).is_ok());
        // The paper's sizing argument: at θ=12 each cell is < 0.1 degrees.
        assert!(g.cell_width() < 0.1);
    }

    #[test]
    fn mbr_to_cell_space_covers_located_cells() {
        let g = unit_grid(4);
        let m = Mbr::new(Point::new(0.1, 0.2), Point::new(0.6, 0.7));
        let cm = g.mbr_to_cell_space(&m);
        let (lo_x, lo_y) = g.locate(&m.min).unwrap();
        let (hi_x, hi_y) = g.locate(&m.max).unwrap();
        assert_eq!(cm.min, Point::new(lo_x as f64, lo_y as f64));
        assert_eq!(cm.max, Point::new(hi_x as f64, hi_y as f64));
    }

    proptest! {
        #[test]
        fn prop_points_map_inside_grid(x in 0.0f64..1.0, y in 0.0f64..1.0, theta in 1u32..10) {
            let g = unit_grid(theta);
            let (cx, cy) = g.locate(&Point::new(x, y)).unwrap();
            prop_assert!(cx < g.side());
            prop_assert!(cy < g.side());
            // The point lies inside the MBR of the cell it maps to.
            let id = g.cell_of(&Point::new(x, y)).unwrap();
            prop_assert!(g.cell_mbr(id).contains_point(&Point::new(x, y)));
        }

        #[test]
        fn prop_finer_grids_nest(x in 0.0f64..1.0, y in 0.0f64..1.0, theta in 1u32..9) {
            // The cell at resolution θ is a parent of the cell at θ+1.
            let coarse = unit_grid(theta);
            let fine = unit_grid(theta + 1);
            let (cx, cy) = coarse.locate(&Point::new(x, y)).unwrap();
            let (fx, fy) = fine.locate(&Point::new(x, y)).unwrap();
            prop_assert_eq!(fx / 2, cx);
            prop_assert_eq!(fy / 2, cy);
        }
    }
}
