//! Error type shared by the spatial substrate.

use std::fmt;

/// Errors produced while building grids or cell-based datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialError {
    /// The requested grid resolution is outside the supported range.
    ///
    /// Cell IDs are produced by interleaving two `θ`-bit coordinates into a
    /// `u64`, so `θ` must satisfy `1 ≤ θ ≤ 31`.
    InvalidResolution(u32),
    /// The space bounds are degenerate (zero or negative width / height).
    DegenerateSpace {
        /// Width of the requested space.
        width: f64,
        /// Height of the requested space.
        height: f64,
    },
    /// A point lies outside the grid's bounded space.
    PointOutOfBounds {
        /// The offending point's longitude.
        x: f64,
        /// The offending point's latitude.
        y: f64,
    },
    /// A dataset was empty where a non-empty one is required.
    EmptyDataset,
}

impl fmt::Display for SpatialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialError::InvalidResolution(theta) => {
                write!(
                    f,
                    "grid resolution θ={theta} outside supported range 1..=31"
                )
            }
            SpatialError::DegenerateSpace { width, height } => {
                write!(f, "degenerate space: width={width}, height={height}")
            }
            SpatialError::PointOutOfBounds { x, y } => {
                write!(f, "point ({x}, {y}) outside the grid's bounded space")
            }
            SpatialError::EmptyDataset => write!(f, "dataset contains no points"),
        }
    }
}

impl std::error::Error for SpatialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SpatialError::InvalidResolution(40);
        assert!(e.to_string().contains("40"));
        let e = SpatialError::DegenerateSpace {
            width: 0.0,
            height: 1.0,
        };
        assert!(e.to_string().contains("degenerate"));
        let e = SpatialError::PointOutOfBounds { x: 1.0, y: 2.0 };
        assert!(e.to_string().contains("outside"));
        assert!(SpatialError::EmptyDataset.to_string().contains("no points"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SpatialError::EmptyDataset, SpatialError::EmptyDataset);
        assert_ne!(
            SpatialError::InvalidResolution(3),
            SpatialError::InvalidResolution(4)
        );
    }
}
