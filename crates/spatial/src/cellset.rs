//! Cell-based datasets (Definition 5).
//!
//! A [`CellSet`] is the grid representation of a spatial dataset: the sorted,
//! deduplicated set of z-order cell IDs that contain at least one of the
//! dataset's points.  Both joinable-search problems are defined purely on
//! cell sets — OJSP maximises `|S_Q ∩ S_D|` and CJSP maximises
//! `|S_Q ∪ (∪ S_Di)|` — so the intersection-size and union-size primitives
//! here are the hot path of every search algorithm in the repository.
//!
//! # Performance
//!
//! [`intersection_size`](CellSet::intersection_size) (and everything built on
//! it: `union_size`, `marginal_gain`, `intersection_size_many`) picks between
//! three kernels:
//!
//! 1. **Galloping** when the sizes are skewed (`|small| · 16 < |large|`): for
//!    each cell of the small set, exponentially probe forward in the large
//!    set's remaining tail — `O(m·log(n/m))`, ideal for a handful of query
//!    cells against a big indexed dataset.
//! 2. **Word-parallel popcount** when both sets are dense (≥ 2 cells per
//!    occupied 64-cell block on average): each set lazily builds and caches a
//!    bit-packed block representation — 64-bit words keyed by `cell >> 6` —
//!    and the intersection is a merge over block keys with one `AND` +
//!    `count_ones` per matching block, processing up to 64 cells per
//!    instruction.  Z-order IDs make this effective: spatially clustered
//!    datasets occupy few, well-filled blocks.
//! 3. **Linear merge** otherwise (comparable sizes, sparse blocks), where the
//!    packed form would degenerate to one bit per word.
//!
//! The packed form is built at most once per set (cached in a [`OnceLock`]
//! alongside the sorted vec, invalidated by mutation), so batch callers that
//! intersect the same sets repeatedly pay the packing cost once and the
//! popcount price thereafter.  Run `cargo run --release -p bench
//! --bin bench-runner` to measure the kernels on this machine; see
//! `BENCH_*.json` at the repository root for the committed trajectory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::grid::Grid;
use crate::mbr::Mbr;
use crate::point::Point;
use crate::zorder::{cell_coords, cell_id, CellId};
use serde::{Deserialize, Serialize};

/// Size skew ratio above which the galloping kernel is used.
const GALLOP_SKEW: usize = 16;

/// Minimum average bits per occupied 64-cell block for the word-parallel
/// kernel to be worthwhile on both operands.
const PACKED_MIN_DENSITY: f64 = 2.0;

// Process-wide kernel dispatch counters (relaxed: metrics tolerate torn
// cross-counter views, and a relaxed fetch_add is far below the cost of the
// cheapest kernel invocation). Cumulative and monotone so they can feed a
// metrics-registry counter directly.
static CALLS_PACKED: AtomicU64 = AtomicU64::new(0);
static CALLS_LINEAR: AtomicU64 = AtomicU64::new(0);
static CALLS_GALLOPING: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide counts of intersection-kernel invocations, by
/// kernel. Covers both adaptive dispatch through
/// [`intersection_size`](CellSet::intersection_size) and direct calls to the
/// per-kernel entry points; observability layers (the per-source metrics
/// registry, `bench-runner`) snapshot these to show which kernel actually
/// carries a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCounters {
    /// Word-parallel popcount kernel invocations.
    pub packed: u64,
    /// Linear sorted-merge kernel invocations.
    pub linear: u64,
    /// Galloping (skewed-size) kernel invocations.
    pub galloping: u64,
}

/// A snapshot of the process-wide [`KernelCounters`].
pub fn kernel_counters() -> KernelCounters {
    KernelCounters {
        packed: CALLS_PACKED.load(Ordering::Relaxed),
        linear: CALLS_LINEAR.load(Ordering::Relaxed),
        galloping: CALLS_GALLOPING.load(Ordering::Relaxed),
    }
}

/// Bit-packed block representation of a sorted cell list: `keys[i]` is
/// `cell >> 6` and `words[i]` has bit `cell & 63` set for every member cell
/// in that block.  Keys are strictly increasing, words are never zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct PackedCells {
    keys: Vec<u64>,
    words: Vec<u64>,
}

impl PackedCells {
    /// Packs a sorted, deduplicated cell list into blocks.
    fn build(cells: &[CellId]) -> Self {
        let mut keys: Vec<u64> = Vec::new();
        let mut words: Vec<u64> = Vec::new();
        for &cell in cells {
            let key = cell >> 6;
            let bit = 1u64 << (cell & 63);
            match words.last_mut() {
                Some(word) if keys.last() == Some(&key) => *word |= bit,
                _ => {
                    keys.push(key);
                    words.push(bit);
                }
            }
        }
        Self { keys, words }
    }

    /// Number of occupied blocks.
    fn block_count(&self) -> usize {
        self.keys.len()
    }

    /// Word-parallel intersection size: merge the two key lists and popcount
    /// the `AND` of matching words.  Galloping over the larger key list when
    /// the block counts themselves are skewed.
    fn intersection_size(&self, other: &PackedCells) -> usize {
        let (small, large) = if self.keys.len() <= other.keys.len() {
            (self, other)
        } else {
            (other, self)
        };
        if small.keys.is_empty() {
            return 0;
        }
        if small.keys.len() * GALLOP_SKEW < large.keys.len() {
            small.intersection_size_galloping(large)
        } else {
            small.intersection_size_merge(large)
        }
    }

    /// Returns `true` as soon as any block `AND` is non-zero — the
    /// word-parallel "do these sets share a cell?" predicate.
    fn intersects(&self, other: &PackedCells) -> bool {
        let mut i = 0;
        let mut j = 0;
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if self.words[i] & other.words[j] != 0 {
                        return true;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        false
    }

    fn intersection_size_merge(&self, other: &PackedCells) -> usize {
        let mut i = 0;
        let mut j = 0;
        let mut count = 0;
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += (self.words[i] & other.words[j]).count_ones() as usize;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    fn intersection_size_galloping(&self, other: &PackedCells) -> usize {
        let mut base = 0;
        let mut count = 0;
        for (idx, &key) in self.keys.iter().enumerate() {
            let tail = &other.keys[base..];
            if tail.is_empty() {
                break;
            }
            let mut step = 1;
            while step < tail.len() && tail[step] < key {
                step <<= 1;
            }
            let lo = step >> 1;
            let hi = step.min(tail.len() - 1);
            match tail[lo..=hi].binary_search(&key) {
                Ok(pos) => {
                    count += (self.words[idx] & other.words[base + lo + pos]).count_ones() as usize;
                    base += lo + pos + 1;
                }
                Err(pos) => {
                    base += lo + pos;
                }
            }
        }
        count
    }

    /// Heap bytes used by the packed form.
    fn memory_bytes(&self) -> usize {
        (self.keys.capacity() + self.words.capacity()) * std::mem::size_of::<u64>()
    }
}

/// One coarse block of a boundary decomposition: the exact bounding box (in
/// cell coordinates) of the boundary cells it groups, and the range of
/// [`BoundaryIndex::coords`] holding them.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BoundaryBlock {
    pub(crate) min_x: f64,
    pub(crate) min_y: f64,
    pub(crate) max_x: f64,
    pub(crate) max_y: f64,
    pub(crate) start: u32,
    pub(crate) end: u32,
}

/// A set's boundary cells grouped into coarse
/// [`BOUNDARY_BLOCK_SIZE`]×[`BOUNDARY_BLOCK_SIZE`]-cell blocks — the verify
/// state the two-level distance kernel walks: block-pair bounding-box gaps
/// prune in exact integer arithmetic, and only the surviving block pairs are
/// scanned cell by cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct BoundaryIndex {
    pub(crate) coords: Vec<(f64, f64)>,
    pub(crate) blocks: Vec<BoundaryBlock>,
}

/// Side length (in cells) of one boundary block.
const BOUNDARY_BLOCK_SIZE: u32 = 8;

impl BoundaryIndex {
    fn build(boundary: Vec<(u32, u32)>) -> Self {
        let mut cells = boundary;
        let key = |&(x, y): &(u32, u32)| {
            (((x / BOUNDARY_BLOCK_SIZE) as u64) << 32) | (y / BOUNDARY_BLOCK_SIZE) as u64
        };
        cells.sort_unstable_by_key(key);
        let coords: Vec<(f64, f64)> = cells.iter().map(|&(x, y)| (x as f64, y as f64)).collect();
        let mut blocks: Vec<BoundaryBlock> = Vec::new();
        let mut start = 0usize;
        while start < cells.len() {
            let block_key = key(&cells[start]);
            let mut end = start + 1;
            while end < cells.len() && key(&cells[end]) == block_key {
                end += 1;
            }
            // Explicit comparisons instead of `fold(…, f64::min)`: the
            // coordinates come from u32 grid cells so no NaN can occur, but
            // the float-ordering rule bans the NaN-dropping idiom wholesale.
            let mut block = BoundaryBlock {
                min_x: f64::INFINITY,
                min_y: f64::INFINITY,
                max_x: f64::NEG_INFINITY,
                max_y: f64::NEG_INFINITY,
                start: start as u32,
                end: end as u32,
            };
            for &(x, y) in &coords[start..end] {
                if x < block.min_x {
                    block.min_x = x;
                }
                if y < block.min_y {
                    block.min_y = y;
                }
                if x > block.max_x {
                    block.max_x = x;
                }
                if y > block.max_y {
                    block.max_y = y;
                }
            }
            blocks.push(block);
            start = end;
        }
        Self { coords, blocks }
    }

    fn memory_bytes(&self) -> usize {
        self.coords.capacity() * std::mem::size_of::<(f64, f64)>()
            + self.blocks.capacity() * std::mem::size_of::<BoundaryBlock>()
    }
}

/// A sorted, deduplicated set of grid cell IDs representing a spatial
/// dataset on a fixed grid.
///
/// Alongside the sorted vec the set lazily caches a bit-packed block form
/// used by the word-parallel intersection kernel (see the module docs);
/// equality, ordering of iteration and the serialized shape are defined by
/// the sorted cells alone.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CellSet {
    cells: Vec<CellId>,
    packed: OnceLock<PackedCells>,
    coords: OnceLock<Vec<(f64, f64)>>,
    boundary: OnceLock<BoundaryIndex>,
}

impl PartialEq for CellSet {
    fn eq(&self, other: &Self) -> bool {
        self.cells == other.cells
    }
}

impl Eq for CellSet {}

impl CellSet {
    /// Creates an empty cell set.
    pub fn new() -> Self {
        Self::from_sorted(Vec::new())
    }

    /// Wraps an already sorted, deduplicated cell vector.
    fn from_sorted(cells: Vec<CellId>) -> Self {
        debug_assert!(cells.windows(2).all(|w| w[0] < w[1]));
        Self {
            cells,
            packed: OnceLock::new(),
            coords: OnceLock::new(),
            boundary: OnceLock::new(),
        }
    }

    /// Shared construction tail: sorts, deduplicates and wraps a candidate
    /// cell vector (callers pre-reserve capacity for their own source shape).
    fn from_unsorted(mut cells: Vec<CellId>) -> Self {
        cells.sort_unstable();
        cells.dedup();
        Self::from_sorted(cells)
    }

    /// Builds a cell set from an arbitrary iterator of cell IDs (sorting and
    /// deduplicating).
    pub fn from_cells<I: IntoIterator<Item = CellId>>(cells: I) -> Self {
        let iter = cells.into_iter();
        let mut v: Vec<CellId> = Vec::with_capacity(iter.size_hint().0);
        v.extend(iter);
        Self::from_unsorted(v)
    }

    /// Builds the cell-based representation `S_{D,Cθ}` of a point dataset on
    /// a grid, skipping points that fall outside the grid's bounded space
    /// (real portals contain a handful of out-of-range records; the paper
    /// simply grids what falls inside the declared space).
    pub fn from_points(grid: &Grid, points: &[Point]) -> Self {
        let mut v: Vec<CellId> = Vec::with_capacity(points.len());
        v.extend(points.iter().filter_map(|p| grid.cell_of(p).ok()));
        Self::from_unsorted(v)
    }

    /// Number of cells in the set — the *spatial coverage* of the dataset.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` when the set contains no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The sorted cell IDs.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Returns `true` when the set contains `cell`.
    pub fn contains(&self, cell: CellId) -> bool {
        self.cells.binary_search(&cell).is_ok()
    }

    /// Iterates over the cell IDs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells.iter().copied()
    }

    /// The cached bit-packed form, building it on first use.
    fn packed(&self) -> &PackedCells {
        self.packed.get_or_init(|| PackedCells::build(&self.cells))
    }

    /// The cells decomposed to grid coordinates and sorted by x — the *verify
    /// state* of the dataset-distance plane sweep (Definition 6).
    ///
    /// Built at most once per set (cached in a [`OnceLock`] like the packed
    /// blocks, invalidated by mutation), so every distance computation
    /// against the same set — a kNN verifier testing hundreds of candidates,
    /// a coverage probe, a range scan — reuses one decomposition instead of
    /// re-allocating and re-sorting per call.
    pub fn sorted_coords(&self) -> &[(f64, f64)] {
        self.coords.get_or_init(|| {
            let mut v: Vec<(f64, f64)> = self
                .cells
                .iter()
                .map(|&c| {
                    let (x, y) = cell_coords(c);
                    (x as f64, y as f64)
                })
                .collect();
            v.sort_unstable_by(|l, r| l.0.total_cmp(&r.0));
            v
        })
    }

    /// The coordinates of the set's *boundary* cells — cells with at least
    /// one 4-neighbour absent from the set — grouped by coarse block (see
    /// [`boundary_index`]); not globally sorted.
    ///
    /// For two **disjoint** sets the closest cell pair always joins two
    /// boundary cells: from an interior cell, stepping one cell toward the
    /// other set stays inside the set and strictly shrinks the (integer)
    /// squared distance, so an interior cell can never be part of a
    /// minimising pair.  The distance kernel therefore only has to walk each
    /// side's boundary, which for dense blob-like datasets is the perimeter
    /// of the blob rather than its area.  Cached like [`sorted_coords`]
    /// (built at most once, invalidated by mutation).
    ///
    /// [`sorted_coords`]: CellSet::sorted_coords
    /// [`boundary_index`]: CellSet::boundary_index
    pub fn boundary_coords(&self) -> &[(f64, f64)] {
        &self.boundary_index().coords
    }

    /// The cached boundary decomposition, grouped into coarse blocks with
    /// exact bounding boxes — the verify state of the two-level distance
    /// kernel.  Block-pair bbox gaps give exact integer lower bounds that
    /// prune almost every block pair before any cell pair is touched.
    pub(crate) fn boundary_index(&self) -> &BoundaryIndex {
        self.boundary.get_or_init(|| {
            let boundary: Vec<(u32, u32)> = self
                .cells
                .iter()
                .filter_map(|&c| {
                    let (x, y) = cell_coords(c);
                    let interior = x
                        .checked_sub(1)
                        .is_some_and(|xl| self.contains(cell_id(xl, y)))
                        && x.checked_add(1)
                            .is_some_and(|xr| self.contains(cell_id(xr, y)))
                        && y.checked_sub(1)
                            .is_some_and(|yd| self.contains(cell_id(x, yd)))
                        && y.checked_add(1)
                            .is_some_and(|yu| self.contains(cell_id(x, yu)));
                    (!interior).then_some((x, y))
                })
                .collect();
            BoundaryIndex::build(boundary)
        })
    }

    /// Returns `true` when the sets share at least one cell, answered by an
    /// early-exiting `AND` over the cached word-parallel packed blocks.
    pub fn intersects(&self, other: &CellSet) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.packed().intersects(other.packed())
    }

    /// Average member cells per occupied 64-cell block.  Exact once the
    /// packed form is cached; before that, a conservative lower bound from
    /// the spanned block range (occupied blocks ≤ spanned blocks, so the true
    /// density is at least the estimate's floor counterpart — dense runs are
    /// recognised either way, and a wrong guess only costs the kernel choice,
    /// never correctness).
    fn density_hint(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        if let Some(packed) = self.packed.get() {
            return self.cells.len() as f64 / packed.block_count() as f64;
        }
        let first = self.cells[0] >> 6;
        let last = self.cells[self.cells.len() - 1] >> 6;
        let spanned = (last - first + 1) as f64;
        self.cells.len() as f64 / spanned
    }

    /// Size of the intersection `|self ∩ other|`.
    ///
    /// Adaptive over three kernels — galloping for skewed sizes,
    /// word-parallel popcount over the cached bit-packed blocks when both
    /// sets are dense, linear merge otherwise.  See the module-level
    /// "Performance" section for the selection heuristic.
    pub fn intersection_size(&self, other: &CellSet) -> usize {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        if small.is_empty() {
            return 0;
        }
        if small.len() * GALLOP_SKEW < large.len() {
            small.intersection_size_galloping(large)
        } else if small.density_hint() >= PACKED_MIN_DENSITY
            && large.density_hint() >= PACKED_MIN_DENSITY
        {
            small.intersection_size_packed(large)
        } else {
            small.intersection_size_linear(large)
        }
    }

    /// Word-parallel intersection size over the bit-packed block forms,
    /// building and caching them on first use.  Exposed so tests and benches
    /// can drive this kernel directly regardless of the density heuristic.
    pub fn intersection_size_packed(&self, other: &CellSet) -> usize {
        if self.is_empty() || other.is_empty() {
            return 0;
        }
        CALLS_PACKED.fetch_add(1, Ordering::Relaxed);
        self.packed().intersection_size(other.packed())
    }

    /// Reference linear merge of the two sorted lists. Exposed so tests and
    /// benches can compare the adaptive paths against it.
    pub fn intersection_size_linear(&self, other: &CellSet) -> usize {
        CALLS_LINEAR.fetch_add(1, Ordering::Relaxed);
        let mut i = 0;
        let mut j = 0;
        let mut count = 0;
        while i < self.cells.len() && j < other.cells.len() {
            match self.cells[i].cmp(&other.cells[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Galloping intersection: for each cell of `self` (assumed the smaller
    /// set), exponentially probe forward in `other`'s remaining tail, then
    /// binary-search the bracketed window.  Unlike a per-element full binary
    /// search this is `O(m·log(n/m))` overall and never rescans the part of
    /// `other` already passed, which is what makes it profitable even when
    /// the skew is moderate. Exposed so tests can drive this path directly.
    pub fn intersection_size_galloping(&self, other: &CellSet) -> usize {
        CALLS_GALLOPING.fetch_add(1, Ordering::Relaxed);
        let mut base = 0; // everything before `base` in `other` is consumed
        let mut count = 0;
        for &cell in &self.cells {
            let tail = &other.cells[base..];
            if tail.is_empty() {
                break;
            }
            // Exponential probe: find the first window [step/2, step] whose
            // upper bound reaches `cell`.
            let mut step = 1;
            while step < tail.len() && tail[step] < cell {
                step <<= 1;
            }
            let lo = step >> 1;
            let hi = step.min(tail.len() - 1);
            match tail[lo..=hi].binary_search(&cell) {
                Ok(pos) => {
                    count += 1;
                    base += lo + pos + 1;
                }
                Err(pos) => {
                    base += lo + pos;
                }
            }
        }
        count
    }

    /// Batch intersection sizes `|self ∩ otherᵢ|` for every set in `others`.
    ///
    /// Equivalent to mapping [`intersection_size`](Self::intersection_size)
    /// over `others`, but written as one primitive so batch callers (the
    /// multi-source query engine's coverage aggregation, the baselines'
    /// candidate scoring, the benches) have a single hot entry point: `self`
    /// is packed at most once and its cached block form is reused against
    /// every dense partner in the batch.
    pub fn intersection_size_many<'a, I>(&self, others: I) -> Vec<usize>
    where
        I: IntoIterator<Item = &'a CellSet>,
    {
        others
            .into_iter()
            .map(|other| self.intersection_size(other))
            .collect()
    }

    /// Size of the union `|self ∪ other|` by inclusion–exclusion.
    ///
    /// Allocation-free: no per-call buffer is built — the only allocation
    /// that can ever happen underneath is the one-time packed-block cache
    /// fill, shared with every other intersection against the same set.
    pub fn union_size(&self, other: &CellSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// The union of two cell sets as a new set.
    pub fn union(&self, other: &CellSet) -> CellSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let mut i = 0;
        let mut j = 0;
        while i < self.cells.len() && j < other.cells.len() {
            match self.cells[i].cmp(&other.cells[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.cells[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.cells[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.cells[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.cells[i..]);
        out.extend_from_slice(&other.cells[j..]);
        CellSet::from_sorted(out)
    }

    /// In-place union (used by CoverageSearch's merge strategy).
    pub fn union_in_place(&mut self, other: &CellSet) {
        *self = self.union(other);
    }

    /// The intersection of two cell sets as a new set.
    pub fn intersection(&self, other: &CellSet) -> CellSet {
        let mut out = Vec::new();
        let mut i = 0;
        let mut j = 0;
        while i < self.cells.len() && j < other.cells.len() {
            match self.cells[i].cmp(&other.cells[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.cells[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        CellSet::from_sorted(out)
    }

    /// Marginal gain `g(S_D, R) = |S_D ∪ R| − |R|` of adding this set to an
    /// accumulated union `R` (Equation 3): the number of cells of `self` not
    /// already covered by `accumulated`.
    pub fn marginal_gain(&self, accumulated: &CellSet) -> usize {
        self.len() - self.intersection_size(accumulated)
    }

    /// Drops every lazily derived cache (packed blocks, float coordinates,
    /// boundary index).  **Every** `&mut self` method that changes `cells`
    /// must call this before returning — a stale `OnceLock` silently serves
    /// wrong verify state.  repo-lint's `cache-invalidation` rule enforces
    /// the pairing.
    fn invalidate_caches(&mut self) {
        self.packed.take();
        self.coords.take();
        self.boundary.take();
    }

    /// Inserts a single cell, keeping the set sorted. Returns `true` when the
    /// cell was not present before.
    pub fn insert(&mut self, cell: CellId) -> bool {
        match self.cells.binary_search(&cell) {
            Ok(_) => false,
            Err(pos) => {
                self.cells.insert(pos, cell);
                self.invalidate_caches();
                true
            }
        }
    }

    /// Removes a single cell. Returns `true` when the cell was present.
    pub fn remove(&mut self, cell: CellId) -> bool {
        match self.cells.binary_search(&cell) {
            Ok(pos) => {
                self.cells.remove(pos);
                self.invalidate_caches();
                true
            }
            Err(_) => false,
        }
    }

    /// The MBR of the set in *cell coordinate* space, or `None` for an empty
    /// set.  Index nodes over cell-based datasets operate in this space.
    pub fn mbr_cell_space(&self) -> Option<Mbr> {
        Mbr::from_points(self.cells.iter().map(|&c| {
            let (x, y) = cell_coords(c);
            Point::new(x as f64, y as f64)
        }))
    }

    /// Restricts the set to the cells whose coordinates fall inside `window`
    /// (a rectangle in cell-coordinate space).  The multi-source framework
    /// uses this to transmit only the part of a query that can intersect a
    /// candidate source (the paper's second query-distribution strategy).
    pub fn clip_to_window(&self, window: &Mbr) -> CellSet {
        CellSet::from_sorted(
            self.cells
                .iter()
                .copied()
                .filter(|&c| {
                    let (x, y) = cell_coords(c);
                    window.contains_point(&Point::new(x as f64, y as f64))
                })
                .collect(),
        )
    }

    /// An estimate of the heap memory used by this set, in bytes, including
    /// the packed-block, sorted-coordinate and boundary caches when they
    /// have been built.
    pub fn memory_bytes(&self) -> usize {
        self.cells.capacity() * std::mem::size_of::<CellId>()
            + self.packed.get().map_or(0, PackedCells::memory_bytes)
            + self
                .coords
                .get()
                .map_or(0, |v| v.capacity() * std::mem::size_of::<(f64, f64)>())
            + self.boundary.get().map_or(0, BoundaryIndex::memory_bytes)
    }
}

impl FromIterator<CellId> for CellSet {
    fn from_iter<I: IntoIterator<Item = CellId>>(iter: I) -> Self {
        CellSet::from_cells(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn set(ids: &[CellId]) -> CellSet {
        CellSet::from_cells(ids.iter().copied())
    }

    #[test]
    fn kernel_counters_count_dispatches() {
        // Counters are process-global and tests run concurrently, so only
        // monotone growth by at least the calls made here can be asserted.
        let before = kernel_counters();
        let a = set(&[1, 2, 3, 64, 65]);
        let b = set(&[2, 3, 64, 200]);
        a.intersection_size_packed(&b);
        a.intersection_size_linear(&b);
        a.intersection_size_galloping(&b);
        let after = kernel_counters();
        assert!(after.packed > before.packed);
        assert!(after.linear > before.linear);
        assert!(after.galloping > before.galloping);
    }

    #[test]
    fn from_cells_sorts_and_dedups() {
        let s = set(&[9, 3, 3, 11, 9]);
        assert_eq!(s.cells(), &[3, 9, 11]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn paper_example2_cell_sets() {
        // Example 2: S_D1 = {9, 11}, S_D2 = {1, 3}, S_D3 = {12, 13}.
        let d1 = set(&[9, 11]);
        let d2 = set(&[1, 3]);
        let d3 = set(&[12, 13]);
        assert_eq!(d1.intersection_size(&d2), 0);
        assert_eq!(d1.union_size(&d2), 4);
        assert_eq!(d1.union(&d3).cells(), &[9, 11, 12, 13]);
    }

    #[test]
    fn intersection_and_union_sizes() {
        let a = set(&[1, 2, 3, 4, 5]);
        let b = set(&[4, 5, 6, 7]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(b.intersection_size(&a), 2);
        assert_eq!(a.union_size(&b), 7);
        assert_eq!(a.intersection(&b).cells(), &[4, 5]);
    }

    #[test]
    fn galloping_path_matches_merge_path() {
        let small = set(&[10, 500, 999]);
        let large: CellSet = (0..1000u64).collect();
        assert_eq!(small.intersection_size(&large), 3);
        assert_eq!(large.intersection_size(&small), 3);
        assert_eq!(small.intersection_size_galloping(&large), 3);
        assert_eq!(small.intersection_size_linear(&large), 3);
        assert_eq!(small.intersection_size_packed(&large), 3);
    }

    #[test]
    fn empty_set_edge_cases() {
        let empty = CellSet::new();
        let other = set(&[1, 2, 3]);
        assert_eq!(empty.intersection_size(&empty), 0);
        assert_eq!(empty.intersection_size(&other), 0);
        assert_eq!(other.intersection_size(&empty), 0);
        assert_eq!(empty.intersection_size_linear(&other), 0);
        assert_eq!(empty.intersection_size_galloping(&other), 0);
        assert_eq!(empty.intersection_size_packed(&other), 0);
        assert_eq!(other.intersection_size_packed(&empty), 0);
        assert_eq!(empty.union_size(&empty), 0);
        assert_eq!(empty.union(&other).cells(), other.cells());
        assert!(empty.intersection(&other).is_empty());
    }

    #[test]
    fn disjoint_range_edge_cases() {
        // Fully disjoint, interleaved at the boundary, and far apart.
        let low = set(&[0, 1, 2, 3]);
        let high = set(&[100, 200, 300]);
        assert_eq!(low.intersection_size(&high), 0);
        assert_eq!(low.intersection_size_galloping(&high), 0);
        assert_eq!(high.intersection_size_galloping(&low), 0);
        assert_eq!(low.intersection_size_packed(&high), 0);
        assert_eq!(low.union_size(&high), 7);
        // Adjacent but not overlapping.
        let a = set(&[1, 3, 5]);
        let b = set(&[0, 2, 4, 6]);
        assert_eq!(a.intersection_size(&b), 0);
        assert_eq!(a.intersection_size_linear(&b), 0);
        assert_eq!(a.intersection_size_galloping(&b), 0);
        assert_eq!(a.intersection_size_packed(&b), 0);
    }

    #[test]
    fn one_element_edge_cases() {
        let single = set(&[42]);
        let hit: CellSet = (0..100u64).collect();
        let miss = set(&[41, 43]);
        assert_eq!(single.intersection_size(&single), 1);
        assert_eq!(single.intersection_size(&hit), 1);
        assert_eq!(single.intersection_size(&miss), 0);
        assert_eq!(single.intersection_size_galloping(&hit), 1);
        assert_eq!(single.intersection_size_packed(&hit), 1);
        assert_eq!(hit.intersection_size(&single), 1);
        // Last and first element hits exercise the gallop-to-the-end path.
        assert_eq!(set(&[99]).intersection_size_galloping(&hit), 1);
        assert_eq!(set(&[0]).intersection_size_galloping(&hit), 1);
        assert_eq!(set(&[100]).intersection_size_galloping(&hit), 0);
    }

    #[test]
    fn intersection_size_many_matches_singles() {
        let q = set(&[2, 4, 6, 8]);
        let others = [
            set(&[1, 2, 3]),
            CellSet::new(),
            (0..50u64).collect::<CellSet>(),
        ];
        let batch = q.intersection_size_many(others.iter());
        let singles: Vec<usize> = others.iter().map(|o| q.intersection_size(o)).collect();
        assert_eq!(batch, singles);
        assert_eq!(batch, vec![1, 0, 4]);
        assert!(q
            .intersection_size_many(std::iter::empty::<&CellSet>())
            .is_empty());
    }

    #[test]
    fn marginal_gain_matches_definition() {
        let r = set(&[1, 2, 3]);
        let d = set(&[3, 4, 5]);
        // |D ∪ R| - |R| = 5 - 3 = 2
        assert_eq!(d.marginal_gain(&r), 2);
        assert_eq!(d.marginal_gain(&CellSet::new()), 3);
        assert_eq!(CellSet::new().marginal_gain(&r), 0);
    }

    #[test]
    fn insert_and_remove_keep_invariants() {
        let mut s = set(&[5, 10]);
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert_eq!(s.cells(), &[5, 7, 10]);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.cells(), &[7, 10]);
    }

    #[test]
    fn mutation_invalidates_the_packed_cache() {
        let mut s: CellSet = (0..256u64).collect();
        let probe: CellSet = (0..512u64).collect();
        assert_eq!(s.intersection_size_packed(&probe), 256);
        assert!(s.insert(1000));
        assert_eq!(s.intersection_size_packed(&probe), 256);
        assert_eq!(s.intersection_size_packed(&set(&[1000])), 1);
        assert!(s.remove(0));
        assert_eq!(s.intersection_size_packed(&probe), 255);
        assert_eq!(s.intersection_size_linear(&probe), 255);
    }

    #[test]
    fn sorted_coords_are_sorted_and_invalidated_by_mutation() {
        use crate::zorder::cell_id;
        let mut s = CellSet::from_cells([cell_id(5, 1), cell_id(0, 9), cell_id(3, 3)]);
        let coords = s.sorted_coords().to_vec();
        assert_eq!(coords.len(), 3);
        assert!(coords.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(coords[0], (0.0, 9.0));
        // Mutation drops the cache; the rebuilt one reflects the new content.
        assert!(s.insert(cell_id(1, 2)));
        assert_eq!(s.sorted_coords().len(), 4);
        assert!(s.remove(cell_id(5, 1)));
        assert_eq!(s.sorted_coords().len(), 3);
        assert!(!s.sorted_coords().iter().any(|&(x, y)| (x, y) == (5.0, 1.0)));
        assert!(CellSet::new().sorted_coords().is_empty());
    }

    #[test]
    fn sorted_coords_cache_counts_in_memory_estimate() {
        let s: CellSet = (0..100u64).collect();
        let bare = s.memory_bytes();
        s.sorted_coords();
        assert!(s.memory_bytes() >= bare + 100 * std::mem::size_of::<(f64, f64)>());
    }

    #[test]
    fn equality_and_clone_ignore_the_cache() {
        let a: CellSet = (0..300u64).collect();
        let b: CellSet = (0..300u64).collect();
        // Build `a`'s packed cache but not `b`'s: still equal both ways.
        assert_eq!(a.intersection_size_packed(&a), 300);
        assert_eq!(a, b);
        assert_eq!(b, a);
        let c = a.clone();
        assert_eq!(c, a);
        assert_eq!(c.intersection_size_packed(&b), 300);
    }

    #[test]
    fn density_hint_routes_dense_pairs_to_the_packed_kernel() {
        // A solid run has ~64 cells per block; two disjoint high-bit blocks
        // have 1 cell per spanned-block estimate.
        let dense: CellSet = (0..4096u64).collect();
        assert!(dense.density_hint() >= PACKED_MIN_DENSITY);
        let sparse = set(&[0, 1 << 40, 1 << 41, 1 << 42]);
        assert!(sparse.density_hint() < PACKED_MIN_DENSITY);
        // Whatever the kernel choice, the answer matches the reference merge.
        let other: CellSet = (2048..6144u64).collect();
        assert_eq!(
            dense.intersection_size(&other),
            dense.intersection_size_linear(&other)
        );
        assert_eq!(
            sparse.intersection_size(&other),
            sparse.intersection_size_linear(&other)
        );
    }

    #[test]
    fn from_points_grids_a_dataset() {
        let grid = Grid::new(GridConfig {
            origin: Point::new(0.0, 0.0),
            width: 1.0,
            height: 1.0,
            resolution: 2,
        })
        .unwrap();
        let pts = vec![
            Point::new(0.05, 0.05), // cell 0
            Point::new(0.06, 0.07), // cell 0 again
            Point::new(0.30, 0.30), // cell 3
            Point::new(2.0, 2.0),   // out of bounds -> skipped
        ];
        let s = CellSet::from_points(&grid, &pts);
        assert_eq!(s.cells(), &[0, 3]);
    }

    #[test]
    fn clip_to_window_keeps_only_cells_inside() {
        // 4x4 grid, keep only cells with coordinates in [0,1]x[0,1].
        let s = set(&[0, 1, 3, 12, 15]);
        let window = Mbr::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let clipped = s.clip_to_window(&window);
        assert_eq!(clipped.cells(), &[0, 1, 3]);
    }

    #[test]
    fn mbr_cell_space_bounds_all_cells() {
        let s = set(&[0, 3, 12]); // coords (0,0), (1,1), (2,2)
        let m = s.mbr_cell_space().unwrap();
        assert_eq!(m.min, Point::new(0.0, 0.0));
        assert_eq!(m.max, Point::new(2.0, 2.0));
        assert!(CellSet::new().mbr_cell_space().is_none());
    }

    #[test]
    fn memory_estimate_scales_with_len() {
        let s: CellSet = (0..100u64).collect();
        let bare = s.memory_bytes();
        assert!(bare >= 100 * 8);
        // Building the packed cache is reflected in the estimate.
        s.intersection_size_packed(&s);
        assert!(s.memory_bytes() > bare);
        // ... and so is the boundary cache.
        let packed_only = s.memory_bytes();
        assert!(!s.boundary_coords().is_empty());
        assert!(s.memory_bytes() > packed_only);
    }

    fn coord_set(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    #[test]
    fn boundary_keeps_the_perimeter_and_drops_the_interior() {
        // A solid 4x4 block: only the centre 2x2 cells have all four
        // neighbours present.
        let block = coord_set(
            &(0..4)
                .flat_map(|x| (0..4).map(move |y| (x, y)))
                .collect::<Vec<_>>(),
        );
        let boundary = block.boundary_coords();
        assert_eq!(boundary.len(), 12);
        assert!(!boundary.contains(&(1.0, 1.0)));
        assert!(!boundary.contains(&(2.0, 2.0)));
        assert!(boundary.contains(&(0.0, 0.0)));
        assert!(boundary.contains(&(3.0, 2.0)));
        // A thin route is all boundary.
        let route = coord_set(&[(10, 0), (11, 0), (12, 0)]);
        assert_eq!(route.boundary_coords().len(), 3);
        // The origin cell is boundary even though its left/down neighbours
        // would underflow the coordinate space.
        let origin = coord_set(&[(0, 0)]);
        assert_eq!(origin.boundary_coords(), &[(0.0, 0.0)]);
    }

    #[test]
    fn boundary_cache_is_invalidated_by_mutation() {
        let mut s = coord_set(&[(1, 1), (1, 0), (1, 2), (0, 1)]);
        assert_eq!(s.boundary_coords().len(), 4); // (1,1) misses (2,1)
        assert!(s.insert(cell_id(2, 1)));
        // (1,1) is now interior.
        assert_eq!(s.boundary_coords().len(), 4);
        assert!(!s.boundary_coords().contains(&(1.0, 1.0)));
        assert!(s.remove(cell_id(2, 1)));
        assert_eq!(s.boundary_coords().len(), 4);
        assert!(s.boundary_coords().contains(&(1.0, 1.0)));
    }

    #[test]
    fn intersects_matches_intersection_size() {
        let a = set(&[1, 2, 3, 200]);
        let b = set(&[3, 400]);
        let c = set(&[4, 5]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&CellSet::new()));
        assert!(!CellSet::new().intersects(&a));
    }

    proptest! {
        #[test]
        fn prop_set_semantics_match_btreeset(
            a in proptest::collection::vec(0u64..2000, 0..300),
            b in proptest::collection::vec(0u64..2000, 0..300),
        ) {
            let sa: BTreeSet<u64> = a.iter().copied().collect();
            let sb: BTreeSet<u64> = b.iter().copied().collect();
            let ca = CellSet::from_cells(a.clone());
            let cb = CellSet::from_cells(b.clone());
            prop_assert_eq!(ca.intersection_size(&cb), sa.intersection(&sb).count());
            prop_assert_eq!(ca.union_size(&cb), sa.union(&sb).count());
            let u: Vec<u64> = sa.union(&sb).copied().collect();
            let cu = ca.union(&cb);
            prop_assert_eq!(cu.cells(), &u[..]);
        }

        #[test]
        fn prop_intersects_agrees_with_intersection_size(
            a in proptest::collection::vec(0u64..5000, 0..400),
            b in proptest::collection::vec(0u64..5000, 0..400),
        ) {
            let ca = CellSet::from_cells(a);
            let cb = CellSet::from_cells(b);
            prop_assert_eq!(ca.intersects(&cb), ca.intersection_size(&cb) > 0);
        }

        #[test]
        fn prop_boundary_is_a_subset_containing_all_extremes(
            coords in proptest::collection::vec((0u32..48, 0u32..48), 1..120),
        ) {
            let s = coord_set(&coords);
            let full: std::collections::BTreeSet<(u64, u64)> = s
                .sorted_coords()
                .iter()
                .map(|&(x, y)| (x as u64, y as u64))
                .collect();
            let boundary: std::collections::BTreeSet<(u64, u64)> = s
                .boundary_coords()
                .iter()
                .map(|&(x, y)| (x as u64, y as u64))
                .collect();
            prop_assert!(boundary.is_subset(&full));
            // A cell is dropped only when all four neighbours are present.
            for &(x, y) in &full {
                let interior = x > 0
                    && full.contains(&(x - 1, y))
                    && full.contains(&(x + 1, y))
                    && y > 0
                    && full.contains(&(x, y - 1))
                    && full.contains(&(x, y + 1));
                prop_assert_eq!(boundary.contains(&(x, y)), !interior);
            }
        }

        #[test]
        fn prop_inclusion_exclusion(
            a in proptest::collection::vec(0u64..500, 0..200),
            b in proptest::collection::vec(0u64..500, 0..200),
        ) {
            let ca = CellSet::from_cells(a);
            let cb = CellSet::from_cells(b);
            prop_assert_eq!(
                ca.union_size(&cb) + ca.intersection_size(&cb),
                ca.len() + cb.len()
            );
        }

        #[test]
        fn prop_galloping_agrees_with_linear(
            a in proptest::collection::vec(0u64..5000, 0..400),
            b in proptest::collection::vec(0u64..5000, 0..400),
        ) {
            let ca = CellSet::from_cells(a);
            let cb = CellSet::from_cells(b);
            let linear = ca.intersection_size_linear(&cb);
            prop_assert_eq!(ca.intersection_size_galloping(&cb), linear);
            prop_assert_eq!(cb.intersection_size_galloping(&ca), linear);
            prop_assert_eq!(ca.intersection_size(&cb), linear);
            prop_assert_eq!(
                ca.intersection_size_many([&cb, &ca]),
                vec![linear, ca.len()]
            );
        }

        #[test]
        fn prop_packed_agrees_with_linear(
            a in proptest::collection::vec(0u64..5000, 0..400),
            b in proptest::collection::vec(0u64..5000, 0..400),
        ) {
            let ca = CellSet::from_cells(a);
            let cb = CellSet::from_cells(b);
            let linear = ca.intersection_size_linear(&cb);
            prop_assert_eq!(ca.intersection_size_packed(&cb), linear);
            prop_assert_eq!(cb.intersection_size_packed(&ca), linear);
        }

        #[test]
        fn prop_packed_agrees_on_dense_runs(
            start_a in 0u64..10_000,
            len_a in 1usize..4000,
            start_b in 0u64..10_000,
            len_b in 1usize..4000,
        ) {
            // Dense runs: the distribution the word-parallel kernel targets.
            let ca: CellSet = (start_a..start_a + len_a as u64).collect();
            let cb: CellSet = (start_b..start_b + len_b as u64).collect();
            let linear = ca.intersection_size_linear(&cb);
            prop_assert_eq!(ca.intersection_size_packed(&cb), linear);
            prop_assert_eq!(ca.intersection_size(&cb), linear);
            prop_assert_eq!(ca.union_size(&cb), ca.len() + cb.len() - linear);
        }

        #[test]
        fn prop_packed_agrees_on_single_cell_sets(
            cell in 0u64..u64::MAX,
            others in proptest::collection::vec(0u64..u64::MAX, 0..50),
        ) {
            // Single-cell sets: one word on one side, arbitrary blocks on the
            // other — exercises the packed gallop path and the word masks.
            let single = CellSet::from_cells([cell]);
            let rest = CellSet::from_cells(others);
            let linear = single.intersection_size_linear(&rest);
            prop_assert_eq!(single.intersection_size_packed(&rest), linear);
            prop_assert_eq!(rest.intersection_size_packed(&single), linear);
            prop_assert_eq!(single.intersection_size(&rest), linear);
        }

        #[test]
        fn prop_packed_agrees_on_disjoint_high_bit_blocks(
            blocks_a in proptest::collection::vec(0u64..1 << 40, 1..40),
            blocks_b in proptest::collection::vec(0u64..1 << 40, 1..40),
            lows in proptest::collection::vec(0u64..64, 1..8),
        ) {
            // Sets whose members differ only in high bits: every block holds
            // a handful of cells and most block keys miss — adversarial for
            // the packed merge, which must not over- or under-count.
            let ca = CellSet::from_cells(
                blocks_a.iter().flat_map(|&hi| lows.iter().map(move |&lo| (hi << 6) | lo)));
            let cb = CellSet::from_cells(
                blocks_b.iter().flat_map(|&hi| lows.iter().map(move |&lo| (hi << 6) | lo)));
            let linear = ca.intersection_size_linear(&cb);
            prop_assert_eq!(ca.intersection_size_packed(&cb), linear);
            prop_assert_eq!(cb.intersection_size_packed(&ca), linear);
            prop_assert_eq!(ca.intersection_size(&cb), linear);
        }

        #[test]
        fn prop_skewed_galloping_agrees_with_linear(
            small in proptest::collection::vec(0u64..100_000, 0..20),
            dense_start in 0u64..50_000,
            dense_len in 1usize..3000,
        ) {
            // A tiny probe set against a long dense run: the shape that takes
            // the galloping path inside `intersection_size`.
            let ca = CellSet::from_cells(small);
            let cb: CellSet = (dense_start..dense_start + dense_len as u64).collect();
            prop_assert_eq!(
                ca.intersection_size(&cb),
                ca.intersection_size_linear(&cb)
            );
            prop_assert_eq!(
                ca.intersection_size_galloping(&cb),
                ca.intersection_size_linear(&cb)
            );
            prop_assert_eq!(
                ca.intersection_size_packed(&cb),
                ca.intersection_size_linear(&cb)
            );
        }

        #[test]
        fn prop_marginal_gain_bounded_by_len(
            a in proptest::collection::vec(0u64..500, 0..200),
            b in proptest::collection::vec(0u64..500, 0..200),
        ) {
            let ca = CellSet::from_cells(a);
            let cb = CellSet::from_cells(b);
            prop_assert!(ca.marginal_gain(&cb) <= ca.len());
            prop_assert_eq!(ca.marginal_gain(&cb), ca.union_size(&cb) - cb.len());
        }
    }
}
