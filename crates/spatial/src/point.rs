//! Spatial points (Definition 1).

use serde::{Deserialize, Serialize};

/// A 2-dimensional spatial point with a longitude `x` and a latitude `y`.
///
/// The paper models every record of a spatial dataset as such a pair, e.g.
/// `p = (116.36422°, 39.88781°)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Longitude (or generic x coordinate).
    pub x: f64,
    /// Latitude (or generic y coordinate).
    pub y: f64,
}

impl Point {
    /// Creates a new point from a longitude and a latitude.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only
    /// comparisons are needed).
    pub fn distance_squared(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise minimum of two points.
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Midpoint between two points.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Returns `true` when both coordinates are finite numbers.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_squared(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-2.5, 7.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(12.3, -4.5);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn min_max_midpoint() {
        let a = Point::new(1.0, 8.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.min(&b), Point::new(1.0, 4.0));
        assert_eq!(a.max(&b), Point::new(3.0, 8.0));
        assert_eq!(a.midpoint(&b), Point::new(2.0, 6.0));
    }

    #[test]
    fn tuple_conversions_roundtrip() {
        let p: Point = (116.36422, 39.88781).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (116.36422, 39.88781));
    }

    #[test]
    fn finiteness_check() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
