//! Spatial datasets and data-source identifiers (Definitions 2–3).

use crate::cellset::CellSet;
use crate::error::SpatialError;
use crate::grid::Grid;
use crate::mbr::Mbr;
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Identifier of a dataset inside its data source.
pub type DatasetId = u32;

/// Identifier of a data source in the multi-source framework.
pub type SourceId = u16;

/// A spatial dataset: an identified set of 2-D points (Definition 2).
///
/// A [`SpatialDataset`] is the *raw* representation downloaded from a data
/// portal; every index and every search algorithm works on its grid
/// representation obtained through [`SpatialDataset::to_cell_set`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialDataset {
    /// Identifier of the dataset within its source.
    pub id: DatasetId,
    /// Human-readable name (portal file name, route name, …).
    pub name: String,
    /// The dataset's points.
    pub points: Vec<Point>,
}

impl SpatialDataset {
    /// Creates a dataset from an id and points, with a generated name.
    pub fn new(id: DatasetId, points: Vec<Point>) -> Self {
        Self {
            id,
            name: format!("dataset-{id}"),
            points,
        }
    }

    /// Creates a dataset with an explicit name.
    pub fn named(id: DatasetId, name: impl Into<String>, points: Vec<Point>) -> Self {
        Self {
            id,
            name: name.into(),
            points,
        }
    }

    /// Number of points `|D|`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the dataset has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The MBR of the dataset's points, or `None` for an empty dataset.
    pub fn mbr(&self) -> Option<Mbr> {
        Mbr::from_points(self.points.iter().copied())
    }

    /// Converts the dataset to its cell-based representation on a grid
    /// (Definition 5).
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::EmptyDataset`] when the dataset has no points
    /// inside the grid's bounded space.
    pub fn to_cell_set(&self, grid: &Grid) -> Result<CellSet, SpatialError> {
        let set = CellSet::from_points(grid, &self.points);
        if set.is_empty() {
            return Err(SpatialError::EmptyDataset);
        }
        Ok(set)
    }
}

/// Summary statistics of a data source, mirroring Table I of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceStats {
    /// Name of the source (e.g. "Transit-dataset").
    pub name: String,
    /// Number of datasets in the source.
    pub dataset_count: usize,
    /// Total number of points across all datasets.
    pub point_count: usize,
    /// Bounding box of all points.
    pub extent: Option<Mbr>,
}

impl SourceStats {
    /// Computes the statistics of a collection of datasets.
    pub fn compute(name: impl Into<String>, datasets: &[SpatialDataset]) -> Self {
        let mut extent: Option<Mbr> = None;
        let mut point_count = 0usize;
        for d in datasets {
            point_count += d.len();
            if let Some(m) = d.mbr() {
                extent = Some(match extent {
                    Some(e) => e.union(&m),
                    None => m,
                });
            }
        }
        Self {
            name: name.into(),
            dataset_count: datasets.len(),
            point_count,
            extent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;

    fn grid() -> Grid {
        Grid::new(GridConfig {
            origin: Point::new(0.0, 0.0),
            width: 1.0,
            height: 1.0,
            resolution: 3,
        })
        .unwrap()
    }

    #[test]
    fn dataset_basics() {
        let d = SpatialDataset::new(7, vec![Point::new(0.1, 0.2), Point::new(0.3, 0.4)]);
        assert_eq!(d.id, 7);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.name, "dataset-7");
        let named = SpatialDataset::named(1, "bus-route-42", vec![]);
        assert_eq!(named.name, "bus-route-42");
        assert!(named.is_empty());
        assert!(named.mbr().is_none());
    }

    #[test]
    fn mbr_encloses_all_points() {
        let d = SpatialDataset::new(
            0,
            vec![
                Point::new(0.1, 0.9),
                Point::new(0.5, 0.2),
                Point::new(0.7, 0.4),
            ],
        );
        let m = d.mbr().unwrap();
        for p in &d.points {
            assert!(m.contains_point(p));
        }
    }

    #[test]
    fn to_cell_set_grids_points() {
        let d = SpatialDataset::new(0, vec![Point::new(0.05, 0.05), Point::new(0.06, 0.06)]);
        let s = d.to_cell_set(&grid()).unwrap();
        assert_eq!(s.len(), 1);
        let empty = SpatialDataset::new(1, vec![Point::new(5.0, 5.0)]);
        assert_eq!(empty.to_cell_set(&grid()), Err(SpatialError::EmptyDataset));
    }

    #[test]
    fn source_stats_aggregate() {
        let datasets = vec![
            SpatialDataset::new(0, vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]),
            SpatialDataset::new(1, vec![Point::new(2.0, -1.0)]),
        ];
        let stats = SourceStats::compute("test", &datasets);
        assert_eq!(stats.dataset_count, 2);
        assert_eq!(stats.point_count, 3);
        let extent = stats.extent.unwrap();
        assert_eq!(extent.min, Point::new(0.0, -1.0));
        assert_eq!(extent.max, Point::new(2.0, 1.0));
    }

    #[test]
    fn source_stats_of_empty_source() {
        let stats = SourceStats::compute("empty", &[]);
        assert_eq!(stats.dataset_count, 0);
        assert_eq!(stats.point_count, 0);
        assert!(stats.extent.is_none());
    }
}
