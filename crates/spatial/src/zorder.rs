//! Z-order (Morton) space-filling curve.
//!
//! Definition 4 maps each grid cell's `(X, Y)` coordinates to a unique
//! non-negative integer by interleaving the binary representations of the two
//! coordinates — the classic z-order curve.  Cell IDs are consecutive in the
//! range `[0, 2^θ × 2^θ − 1]`.

/// Integer identifier of a grid cell, produced by the z-order curve.
pub type CellId = u64;

/// Interleaves the lower 32 bits of `v` with zeros, producing a 64-bit value
/// whose even bit positions carry `v`'s bits.
#[inline]
fn spread_bits(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread_bits`]: collects the even bit positions of `v` back
/// into a compact 32-bit value.
#[inline]
fn compact_bits(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Encodes cell coordinates `(x, y)` into a z-order cell ID
/// (`z(X, Y) = c` in Definition 4).
///
/// Bit `i` of `x` lands at bit `2i` of the result and bit `i` of `y` at bit
/// `2i + 1`, so for a `2^θ × 2^θ` grid the IDs form the contiguous range
/// `[0, 4^θ)`.
#[inline]
pub fn cell_id(x: u32, y: u32) -> CellId {
    spread_bits(x) | (spread_bits(y) << 1)
}

/// Decodes a z-order cell ID back into its `(x, y)` cell coordinates.
#[inline]
pub fn cell_coords(id: CellId) -> (u32, u32) {
    (compact_bits(id), compact_bits(id >> 1))
}

/// Euclidean distance between the coordinates of two cells, as used by the
/// cell-based dataset distance (Definition 6).
#[inline]
pub fn cell_distance(a: CellId, b: CellId) -> f64 {
    let (ax, ay) = cell_coords(a);
    let (bx, by) = cell_coords(b);
    let dx = ax as f64 - bx as f64;
    let dy = ay as f64 - by as f64;
    (dx * dx + dy * dy).sqrt()
}

/// Chebyshev (L∞) distance between two cells, useful as a cheap lower bound
/// on the Euclidean cell distance.
#[inline]
pub fn cell_chebyshev_distance(a: CellId, b: CellId) -> u32 {
    let (ax, ay) = cell_coords(a);
    let (bx, by) = cell_coords(b);
    ax.abs_diff(bx).max(ay.abs_diff(by))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_fig2() {
        // Fig. 2(a): θ = 2, the bottom-left cell has coordinates (0,0) -> id 0,
        // and the full 4x4 grid is numbered in z-order:
        //  10 11 14 15
        //   8  9 12 13
        //   2  3  6  7
        //   0  1  4  5
        let expected = [
            [0u64, 1, 4, 5],
            [2, 3, 6, 7],
            [8, 9, 12, 13],
            [10, 11, 14, 15],
        ];
        for (y, row) in expected.iter().enumerate() {
            for (x, id) in row.iter().enumerate() {
                assert_eq!(cell_id(x as u32, y as u32), *id, "cell ({x},{y})");
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_small() {
        for x in 0..64u32 {
            for y in 0..64u32 {
                let id = cell_id(x, y);
                assert_eq!(cell_coords(id), (x, y));
            }
        }
    }

    #[test]
    fn ids_are_dense_for_square_grid() {
        // For a 2^θ x 2^θ grid the set of ids is exactly [0, 4^θ).
        let theta = 3u32;
        let side = 1u32 << theta;
        let mut seen = vec![false; (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                let id = cell_id(x, y) as usize;
                assert!(id < seen.len());
                assert!(!seen[id], "duplicate id {id}");
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cell_distance_matches_coordinates() {
        let a = cell_id(0, 0);
        let b = cell_id(3, 4);
        assert_eq!(cell_distance(a, b), 5.0);
        assert_eq!(cell_chebyshev_distance(a, b), 4);
        assert_eq!(cell_distance(a, a), 0.0);
    }

    #[test]
    fn high_bit_coordinates_survive() {
        let x = (1u32 << 31) - 1;
        let y = 12345u32;
        assert_eq!(cell_coords(cell_id(x, y)), (x, y));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(x in 0u32..u32::MAX, y in 0u32..u32::MAX) {
            prop_assert_eq!(cell_coords(cell_id(x, y)), (x, y));
        }

        #[test]
        fn prop_monotone_in_quadrant(x in 0u32..1000, y in 0u32..1000) {
            // Moving to a strictly larger quadrant (both coords doubled range)
            // never decreases the id: z-order preserves the block ordering.
            let id = cell_id(x, y);
            let id_shifted = cell_id(x + 1024, y + 1024);
            prop_assert!(id_shifted > id);
        }

        #[test]
        fn prop_chebyshev_lower_bounds_euclid(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let cheb = cell_chebyshev_distance(a, b) as f64;
            let eucl = cell_distance(a, b);
            prop_assert!(cheb <= eucl + 1e-9);
            prop_assert!(eucl <= cheb * std::f64::consts::SQRT_2 + 1e-9);
        }
    }
}
