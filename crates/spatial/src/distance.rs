//! Cell-based dataset distance (Definition 6).
//!
//! `dist(S_D, S_D') = min_{c_i ∈ S_D, c_j ∈ S_D'} ||c_i, c_j||₂` — the
//! Euclidean distance between the two closest cells of the two sets, with
//! cell IDs decomposed back into grid coordinates.  The naive computation is
//! quadratic; [`dataset_distance`] uses a plane-sweep over the cells sorted
//! by x coordinate which is near-linear for the route-like datasets the
//! paper targets, and [`dataset_distance_within`] allows early termination
//! as soon as a pair within a threshold is found (all the connectivity
//! checks only need `dist ≤ δ`).
//!
//! The kernel leans on two pieces of cached per-set verify state, both paid
//! for once per set and invalidated by mutation:
//!
//! * overlapping sets are detected in word-parallel time (an early-exiting
//!   `AND` over the packed blocks) and are at distance 0 with no sweep;
//! * disjoint sets walk only their cached **boundary** decompositions —
//!   exact, because the closest pair of two disjoint sets always joins two
//!   boundary cells — grouped into coarse blocks whose bounding-box gaps
//!   prune whole block pairs in exact integer arithmetic before any cell
//!   pair is touched (see [`block_distance`]).  Together these turn the
//!   quadratic area × area scan into a handful of block-bound checks plus a
//!   few perimeter-cell scans, regardless of how far apart the sets are.
//!
//! [`dataset_distance_bounded`] additionally threads a caller-supplied
//! cutoff into the block pruning so far-away candidates abandon after the
//! bound checks instead of scanning cells to completion.

use crate::cellset::{BoundaryBlock, BoundaryIndex, CellSet};
use crate::zorder::cell_coords;

/// Exact cell-based dataset distance between two non-empty cell sets.
///
/// Returns `f64::INFINITY` when either set is empty (no pair exists).
pub fn dataset_distance(a: &CellSet, b: &CellSet) -> f64 {
    // A good-enough threshold of 0 only allows early exit once a distance of
    // exactly zero is found, which cannot be improved upon.
    best_distance(a, b, 0.0)
}

/// Dataset distance with a caller-supplied `cutoff`: the result is **exact**
/// whenever the true distance is `≤ cutoff`; when it exceeds the cutoff an
/// arbitrary value `> cutoff` (possibly `f64::INFINITY`) is returned.
///
/// Candidates at exactly the cutoff are still computed exactly, so a kNN
/// caller passing its current k-th best distance keeps tie-breaking
/// behaviour identical to the unbounded computation.
pub fn dataset_distance_bounded(a: &CellSet, b: &CellSet, cutoff: f64) -> f64 {
    best_distance_bounded(a, b, 0.0, cutoff)
}

/// Returns `true` when `dist(a, b) ≤ delta`, terminating as early as
/// possible.  This is the predicate behind the *directly connected* relation
/// (Definition 7).
pub fn dataset_distance_within(a: &CellSet, b: &CellSet, delta: f64) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    // Pairs further apart than δ along the x axis can never qualify, so the
    // sweep may discard them immediately — this keeps the predicate cheap
    // even for far-apart datasets, which dominate the connectivity checks.
    best_distance_bounded(a, b, delta, delta) <= delta
}

/// Shared kernel: finds the minimum pairwise cell distance, abandoning the
/// search as soon as a pair at distance ≤ `good_enough` is found.
fn best_distance(a: &CellSet, b: &CellSet, good_enough: f64) -> f64 {
    best_distance_bounded(a, b, good_enough, f64::INFINITY)
}

/// Cached-state kernel with an additional `cutoff` (sound when the caller
/// only needs distances ≤ cutoff).
///
/// Two structural fast paths settle most calls, both exact:
///
/// * **Word-parallel overlap check** — sets sharing any cell are at distance
///   0, settled by an early-exiting `AND` over the cached packed words.
///   This is the common case for the candidates a kNN verifier actually
///   reaches, and it never touches a coordinate.
/// * **Two-level boundary walk** — for disjoint sets the minimising pair
///   always joins two boundary cells (see [`CellSet::boundary_coords`]), and
///   the cached boundary decomposition groups those cells into coarse blocks
///   with exact bounding boxes.  [`block_distance`] prunes whole block pairs
///   by their bbox gap before any cell pair is touched, which stays cheap
///   even when the two sets are far apart and a plane-sweep window would
///   never prune anything.  Cell coordinates are integers, so squared
///   distances (and the bbox-gap lower bounds) compute exactly and the
///   result is bit-identical to the full quadratic minimum.
fn best_distance_bounded(a: &CellSet, b: &CellSet, good_enough: f64, cutoff: f64) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    if a.intersects(b) {
        return 0.0;
    }
    block_distance(a.boundary_index(), b.boundary_index(), good_enough, cutoff)
}

/// Separation of two closed intervals along one axis (0 when they overlap).
fn axis_gap(lo1: f64, hi1: f64, lo2: f64, hi2: f64) -> f64 {
    if lo2 > hi1 {
        lo2 - hi1
    } else if lo1 > hi2 {
        lo1 - hi2
    } else {
        0.0
    }
}

/// Exact squared lower bound on the distance between any cell of block `a`
/// and any cell of block `b`: the squared gap between their bounding boxes.
/// All inputs are integer-valued, so the bound computes exactly in `f64`.
fn block_gap_sq(a: &BoundaryBlock, b: &BoundaryBlock) -> f64 {
    let dx = axis_gap(a.min_x, a.max_x, b.min_x, b.max_x);
    let dy = axis_gap(a.min_y, a.max_y, b.min_y, b.max_y);
    dx * dx + dy * dy
}

/// The two-level minimum-distance core over two boundary decompositions.
///
/// Pass 1 finds the block pair with the smallest bbox-gap lower bound and
/// scans it cell by cell to seed `best`.  Pass 2 revisits every block pair,
/// skipping any whose lower bound already rules it out — `lb_sq ≥ best_sq`
/// (exact integer compare) or `√lb_sq > cutoff` (monotone correctly-rounded
/// `sqrt`, so every computed cell distance in the block would also exceed
/// the cutoff) — and scans the survivors.  With a tight seed almost every
/// pair is pruned, so the cost is one cheap bound per block pair plus a few
/// cell scans, independent of how far apart the sets are.
fn block_distance(a: &BoundaryIndex, b: &BoundaryIndex, good_enough: f64, cutoff: f64) -> f64 {
    let mut seed = (0usize, 0usize);
    let mut seed_lb = f64::INFINITY;
    'seed: for (i, ba) in a.blocks.iter().enumerate() {
        for (j, bb) in b.blocks.iter().enumerate() {
            let lb = block_gap_sq(ba, bb);
            if lb < seed_lb {
                seed_lb = lb;
                seed = (i, j);
                if lb == 0.0 {
                    break 'seed;
                }
            }
        }
    }
    let mut best = f64::INFINITY;
    let mut best_sq = f64::INFINITY;
    let scan = |ba: &BoundaryBlock, bb: &BoundaryBlock, best: &mut f64, best_sq: &mut f64| {
        for &(ax, ay) in &a.coords[ba.start as usize..ba.end as usize] {
            for &(bx, by) in &b.coords[bb.start as usize..bb.end as usize] {
                let dx = bx - ax;
                let dy = by - ay;
                // Compare in the squared domain; the square root is only
                // taken when the best pair improves, never per pair.  `sqrt`
                // is monotone, so the result is identical to comparing
                // linearly.
                let d_sq = dx * dx + dy * dy;
                if d_sq < *best_sq {
                    *best_sq = d_sq;
                    *best = d_sq.sqrt();
                    if *best <= good_enough {
                        return true;
                    }
                }
            }
        }
        false
    };
    if scan(
        &a.blocks[seed.0],
        &b.blocks[seed.1],
        &mut best,
        &mut best_sq,
    ) {
        return best;
    }
    for (i, ba) in a.blocks.iter().enumerate() {
        for (j, bb) in b.blocks.iter().enumerate() {
            if (i, j) == seed {
                continue;
            }
            let lb = block_gap_sq(ba, bb);
            if lb >= best_sq || lb.sqrt() > cutoff {
                continue;
            }
            if scan(ba, bb, &mut best, &mut best_sq) {
                return best;
            }
        }
    }
    best
}

/// The plane-sweep core over two x-sorted coordinate lists.
fn sweep(pa: &[(f64, f64)], pb: &[(f64, f64)], good_enough: f64, cutoff: f64) -> f64 {
    let mut best = f64::INFINITY;
    let mut best_sq = f64::INFINITY;
    let mut lo = 0usize;
    for &(ax, ay) in pa {
        let window = best.min(cutoff);
        // Advance the window start: cells whose x is more than the window to
        // the left of ax can never improve the result (or cannot matter to
        // the caller when beyond the cutoff).
        while lo < pb.len() && ax - pb[lo].0 > window {
            lo += 1;
        }
        for &(bx, by) in &pb[lo..] {
            let dx = bx - ax;
            if dx > window {
                break;
            }
            // Compare in the squared domain; the square root is only taken
            // when the best pair improves, never per pair.  `sqrt` is
            // monotone, so the result is identical to comparing linearly.
            let dy = by - ay;
            let d_sq = dx * dx + dy * dy;
            if d_sq < best_sq {
                best_sq = d_sq;
                best = d_sq.sqrt();
                if best <= good_enough {
                    return best;
                }
            }
        }
    }
    best
}

/// Fresh-state reference: decomposes cell ids to coordinates and sorts both
/// sets on **every** call, exactly what [`dataset_distance`] did before the
/// cached verify state existed.  Kept as the parity oracle for the
/// cached-sweep proptests and as the baseline the `bench-runner`
/// `kernel/distance/*` entries measure the cache against.
pub fn dataset_distance_uncached(a: &CellSet, b: &CellSet) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let decompose = |s: &CellSet| {
        let mut v: Vec<(f64, f64)> = s
            .iter()
            .map(|c| {
                let (x, y) = cell_coords(c);
                (x as f64, y as f64)
            })
            .collect();
        v.sort_unstable_by(|l, r| l.0.total_cmp(&r.0));
        v
    };
    let pa = decompose(small);
    let pb = decompose(large);
    sweep(&pa, &pb, 0.0, f64::INFINITY)
}

/// A reusable "is anything within δ of this set?" probe.
///
/// The greedy coverage algorithms test hundreds of candidate datasets against
/// the *same* (and steadily growing) result set every iteration; re-sorting
/// that set for each candidate would dominate the run time.  A
/// [`NeighborProbe`] decomposes and sorts the probe side once and then
/// answers `within(candidate, δ)` by binary-searching the candidate's cells
/// into the sorted x-order, with early acceptance on the first close pair.
#[derive(Debug, Clone)]
pub struct NeighborProbe {
    /// Cell coordinates sorted by x.
    xs: Vec<(f64, f64)>,
}

impl NeighborProbe {
    /// Builds a probe over a cell set, reusing the set's cached sorted
    /// decomposition (so repeated probes over the same set never re-sort).
    pub fn new(cells: &CellSet) -> Self {
        Self {
            xs: cells.sorted_coords().to_vec(),
        }
    }

    /// Returns `true` when the probe set is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Returns `true` when `dist(probe, other) ≤ delta`.
    pub fn within(&self, other: &CellSet, delta: f64) -> bool {
        if self.xs.is_empty() || other.is_empty() {
            return false;
        }
        for cell in other.iter() {
            let (cx, cy) = cell_coords(cell);
            let (cx, cy) = (cx as f64, cy as f64);
            // All probe cells with x in [cx - delta, cx + delta] are the only
            // ones that can be within delta of this cell.
            let start = self.xs.partition_point(|&(x, _)| x < cx - delta);
            for &(x, y) in &self.xs[start..] {
                if x > cx + delta {
                    break;
                }
                let dx = x - cx;
                let dy = y - cy;
                if dx * dx + dy * dy <= delta * delta {
                    return true;
                }
            }
        }
        false
    }
}

/// Brute-force O(|a|·|b|) distance, kept for testing and for the baselines
/// that the paper describes as scanning all pairs.
pub fn dataset_distance_bruteforce(a: &CellSet, b: &CellSet) -> f64 {
    let mut best = f64::INFINITY;
    for ca in a.iter() {
        let (ax, ay) = cell_coords(ca);
        for cb in b.iter() {
            let (bx, by) = cell_coords(cb);
            let dx = ax as f64 - bx as f64;
            let dy = ay as f64 - by as f64;
            best = best.min((dx * dx + dy * dy).sqrt());
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zorder::cell_id;
    use proptest::prelude::*;

    fn set_from_coords(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    #[test]
    fn paper_example3_distances() {
        // Example 2/3: S_D1 = {9, 11}, S_D2 = {1, 3}, S_D3 = {12, 13} on the
        // 4x4 grid of Fig. 2; dist(D1,D2) = 1, dist(D1,D3) = 1,
        // dist(D2,D3) = sqrt(2).
        let d1 = CellSet::from_cells([9u64, 11]);
        let d2 = CellSet::from_cells([1u64, 3]);
        let d3 = CellSet::from_cells([12u64, 13]);
        assert_eq!(dataset_distance(&d1, &d2), 1.0);
        assert_eq!(dataset_distance(&d1, &d3), 1.0);
        assert!((dataset_distance(&d2, &d3) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn overlapping_sets_have_zero_distance() {
        let a = set_from_coords(&[(1, 1), (2, 2)]);
        let b = set_from_coords(&[(2, 2), (5, 5)]);
        assert_eq!(dataset_distance(&a, &b), 0.0);
        assert!(dataset_distance_within(&a, &b, 0.0));
    }

    #[test]
    fn nested_sets_are_at_distance_zero() {
        // b sits strictly inside a's interior: their *boundaries* are 4
        // cells apart, so this only answers 0 because the word-parallel
        // overlap check runs before the boundary sweep.
        let a = set_from_coords(
            &(0..9)
                .flat_map(|x| (0..9).map(move |y| (x, y)))
                .collect::<Vec<_>>(),
        );
        let b = set_from_coords(&[(4, 4)]);
        assert_eq!(dataset_distance(&a, &b), 0.0);
        assert_eq!(dataset_distance_bounded(&a, &b, 0.5), 0.0);
        assert!(dataset_distance_within(&a, &b, 0.0));
    }

    #[test]
    fn empty_sets_are_infinitely_far() {
        let a = CellSet::new();
        let b = set_from_coords(&[(1, 1)]);
        assert_eq!(dataset_distance(&a, &b), f64::INFINITY);
        assert!(!dataset_distance_within(&a, &b, 100.0));
    }

    #[test]
    fn within_threshold_matches_exact() {
        let a = set_from_coords(&[(0, 0), (10, 0)]);
        let b = set_from_coords(&[(0, 5), (20, 20)]);
        assert_eq!(dataset_distance(&a, &b), 5.0);
        assert!(dataset_distance_within(&a, &b, 5.0));
        assert!(!dataset_distance_within(&a, &b, 4.999));
    }

    #[test]
    fn neighbor_probe_matches_within_check() {
        let a = set_from_coords(&[(0, 0), (10, 0), (20, 5)]);
        let b = set_from_coords(&[(0, 4), (30, 30)]);
        let probe = NeighborProbe::new(&a);
        assert!(probe.within(&b, 4.0));
        assert!(!probe.within(&b, 3.9));
        assert!(!NeighborProbe::new(&CellSet::new()).within(&b, 100.0));
        assert!(!probe.within(&CellSet::new(), 100.0));
        assert!(NeighborProbe::new(&CellSet::new()).is_empty());
    }

    #[test]
    fn bounded_is_exact_up_to_and_including_the_cutoff() {
        let a = set_from_coords(&[(0, 0), (10, 0)]);
        let b = set_from_coords(&[(0, 5), (20, 20)]);
        // True distance is 5.0: exact at cutoff 5.0 (the tie case) and above.
        assert_eq!(dataset_distance_bounded(&a, &b, 5.0), 5.0);
        assert_eq!(dataset_distance_bounded(&a, &b, 100.0), 5.0);
        // Below the cutoff only the "> cutoff" contract holds.
        assert!(dataset_distance_bounded(&a, &b, 4.0) > 4.0);
        assert_eq!(
            dataset_distance_bounded(&CellSet::new(), &b, 10.0),
            f64::INFINITY
        );
    }

    #[test]
    fn cached_sweep_survives_mutation() {
        let mut a = set_from_coords(&[(0, 0)]);
        let b = set_from_coords(&[(5, 0)]);
        assert_eq!(dataset_distance(&a, &b), 5.0);
        // Mutating `a` must invalidate its cached verify state.
        a.insert(crate::zorder::cell_id(4, 0));
        assert_eq!(dataset_distance(&a, &b), 1.0);
        assert_eq!(dataset_distance_uncached(&a, &b), 1.0);
        a.remove(crate::zorder::cell_id(4, 0));
        assert_eq!(dataset_distance(&a, &b), 5.0);
    }

    proptest! {
        #[test]
        fn prop_cached_sweep_matches_fresh_oracle(
            a in proptest::collection::vec((0u32..64, 0u32..64), 1..40),
            b in proptest::collection::vec((0u32..64, 0u32..64), 1..40),
        ) {
            let sa = set_from_coords(&a);
            let sb = set_from_coords(&b);
            // Two cached calls (cold then warm) and the fresh oracle agree.
            let cold = dataset_distance(&sa, &sb);
            let warm = dataset_distance(&sa, &sb);
            let fresh = dataset_distance_uncached(&sa, &sb);
            prop_assert_eq!(cold, warm);
            prop_assert_eq!(cold, fresh);
        }

        #[test]
        fn prop_bounded_is_exact_within_cutoff(
            a in proptest::collection::vec((0u32..64, 0u32..64), 1..40),
            b in proptest::collection::vec((0u32..64, 0u32..64), 1..40),
            cutoff in 0.0f64..100.0,
        ) {
            let sa = set_from_coords(&a);
            let sb = set_from_coords(&b);
            let exact = dataset_distance(&sa, &sb);
            let bounded = dataset_distance_bounded(&sa, &sb, cutoff);
            if exact <= cutoff {
                prop_assert_eq!(bounded, exact);
            } else {
                prop_assert!(bounded > cutoff);
            }
            // Ties at exactly the cutoff are exact.
            if exact.is_finite() {
                prop_assert_eq!(dataset_distance_bounded(&sa, &sb, exact), exact);
            }
        }

        #[test]
        fn prop_probe_agrees_with_distance_within(
            a in proptest::collection::vec((0u32..40, 0u32..40), 1..25),
            b in proptest::collection::vec((0u32..40, 0u32..40), 1..25),
            delta in 0.0f64..30.0,
        ) {
            let sa = set_from_coords(&a);
            let sb = set_from_coords(&b);
            let probe = NeighborProbe::new(&sa);
            prop_assert_eq!(probe.within(&sb, delta), dataset_distance_within(&sa, &sb, delta));
        }

        #[test]
        fn prop_sweep_matches_bruteforce(
            a in proptest::collection::vec((0u32..64, 0u32..64), 1..40),
            b in proptest::collection::vec((0u32..64, 0u32..64), 1..40),
        ) {
            let sa = set_from_coords(&a);
            let sb = set_from_coords(&b);
            let fast = dataset_distance(&sa, &sb);
            let brute = dataset_distance_bruteforce(&sa, &sb);
            prop_assert!((fast - brute).abs() < 1e-9, "fast={fast} brute={brute}");
        }

        #[test]
        fn prop_distance_is_symmetric(
            a in proptest::collection::vec((0u32..64, 0u32..64), 1..30),
            b in proptest::collection::vec((0u32..64, 0u32..64), 1..30),
        ) {
            let sa = set_from_coords(&a);
            let sb = set_from_coords(&b);
            prop_assert_eq!(dataset_distance(&sa, &sb), dataset_distance(&sb, &sa));
        }

        #[test]
        fn prop_within_agrees_with_exact(
            a in proptest::collection::vec((0u32..32, 0u32..32), 1..25),
            b in proptest::collection::vec((0u32..32, 0u32..32), 1..25),
            delta in 0.0f64..50.0,
        ) {
            let sa = set_from_coords(&a);
            let sb = set_from_coords(&b);
            let exact = dataset_distance(&sa, &sb);
            prop_assert_eq!(dataset_distance_within(&sa, &sb, delta), exact <= delta);
        }
    }
}
