//! Cell-based dataset distance (Definition 6).
//!
//! `dist(S_D, S_D') = min_{c_i ∈ S_D, c_j ∈ S_D'} ||c_i, c_j||₂` — the
//! Euclidean distance between the two closest cells of the two sets, with
//! cell IDs decomposed back into grid coordinates.  The naive computation is
//! quadratic; [`dataset_distance`] uses a plane-sweep over the cells sorted
//! by x coordinate which is near-linear for the route-like datasets the
//! paper targets, and [`dataset_distance_within`] allows early termination
//! as soon as a pair within a threshold is found (all the connectivity
//! checks only need `dist ≤ δ`).

use crate::cellset::CellSet;
use crate::zorder::cell_coords;

/// Exact cell-based dataset distance between two non-empty cell sets.
///
/// Returns `f64::INFINITY` when either set is empty (no pair exists).
pub fn dataset_distance(a: &CellSet, b: &CellSet) -> f64 {
    // A good-enough threshold of 0 only allows early exit once a distance of
    // exactly zero is found, which cannot be improved upon.
    best_distance(a, b, 0.0)
}

/// Returns `true` when `dist(a, b) ≤ delta`, terminating as early as
/// possible.  This is the predicate behind the *directly connected* relation
/// (Definition 7).
pub fn dataset_distance_within(a: &CellSet, b: &CellSet, delta: f64) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    // Pairs further apart than δ along the x axis can never qualify, so the
    // sweep may discard them immediately — this keeps the predicate cheap
    // even for far-apart datasets, which dominate the connectivity checks.
    best_distance_bounded(a, b, delta, delta) <= delta
}

/// Shared kernel: finds the minimum pairwise cell distance, abandoning the
/// search as soon as a pair at distance ≤ `good_enough` is found.
fn best_distance(a: &CellSet, b: &CellSet, good_enough: f64) -> f64 {
    best_distance_bounded(a, b, good_enough, f64::INFINITY)
}

/// Sweep kernel with an additional `cutoff`: pairs whose x gap exceeds the
/// cutoff are skipped (sound when the caller only needs distances ≤ cutoff).
fn best_distance_bounded(a: &CellSet, b: &CellSet, good_enough: f64, cutoff: f64) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    // Decompose once, sort by x; then for each cell of the smaller set only
    // cells of the other set within the current best dx window need checking.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut pa: Vec<(f64, f64)> = small
        .iter()
        .map(|c| {
            let (x, y) = cell_coords(c);
            (x as f64, y as f64)
        })
        .collect();
    let mut pb: Vec<(f64, f64)> = large
        .iter()
        .map(|c| {
            let (x, y) = cell_coords(c);
            (x as f64, y as f64)
        })
        .collect();
    pa.sort_unstable_by(|l, r| l.0.partial_cmp(&r.0).unwrap());
    pb.sort_unstable_by(|l, r| l.0.partial_cmp(&r.0).unwrap());

    let mut best = f64::INFINITY;
    let mut lo = 0usize;
    for &(ax, ay) in &pa {
        let window = best.min(cutoff);
        // Advance the window start: cells whose x is more than the window to
        // the left of ax can never improve the result (or cannot matter to
        // the caller when beyond the cutoff).
        while lo < pb.len() && ax - pb[lo].0 > window {
            lo += 1;
        }
        for &(bx, by) in &pb[lo..] {
            let dx = bx - ax;
            if dx > window {
                break;
            }
            let dy = by - ay;
            let d = (dx * dx + dy * dy).sqrt();
            if d < best {
                best = d;
                if best <= good_enough {
                    return best;
                }
            }
        }
    }
    best
}

/// A reusable "is anything within δ of this set?" probe.
///
/// The greedy coverage algorithms test hundreds of candidate datasets against
/// the *same* (and steadily growing) result set every iteration; re-sorting
/// that set for each candidate would dominate the run time.  A
/// [`NeighborProbe`] decomposes and sorts the probe side once and then
/// answers `within(candidate, δ)` by binary-searching the candidate's cells
/// into the sorted x-order, with early acceptance on the first close pair.
#[derive(Debug, Clone)]
pub struct NeighborProbe {
    /// Cell coordinates sorted by x.
    xs: Vec<(f64, f64)>,
}

impl NeighborProbe {
    /// Builds a probe over a cell set.
    pub fn new(cells: &CellSet) -> Self {
        let mut xs: Vec<(f64, f64)> = cells
            .iter()
            .map(|c| {
                let (x, y) = cell_coords(c);
                (x as f64, y as f64)
            })
            .collect();
        xs.sort_unstable_by(|l, r| l.0.partial_cmp(&r.0).unwrap());
        Self { xs }
    }

    /// Returns `true` when the probe set is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Returns `true` when `dist(probe, other) ≤ delta`.
    pub fn within(&self, other: &CellSet, delta: f64) -> bool {
        if self.xs.is_empty() || other.is_empty() {
            return false;
        }
        for cell in other.iter() {
            let (cx, cy) = cell_coords(cell);
            let (cx, cy) = (cx as f64, cy as f64);
            // All probe cells with x in [cx - delta, cx + delta] are the only
            // ones that can be within delta of this cell.
            let start = self.xs.partition_point(|&(x, _)| x < cx - delta);
            for &(x, y) in &self.xs[start..] {
                if x > cx + delta {
                    break;
                }
                let dx = x - cx;
                let dy = y - cy;
                if dx * dx + dy * dy <= delta * delta {
                    return true;
                }
            }
        }
        false
    }
}

/// Brute-force O(|a|·|b|) distance, kept for testing and for the baselines
/// that the paper describes as scanning all pairs.
pub fn dataset_distance_bruteforce(a: &CellSet, b: &CellSet) -> f64 {
    let mut best = f64::INFINITY;
    for ca in a.iter() {
        let (ax, ay) = cell_coords(ca);
        for cb in b.iter() {
            let (bx, by) = cell_coords(cb);
            let dx = ax as f64 - bx as f64;
            let dy = ay as f64 - by as f64;
            best = best.min((dx * dx + dy * dy).sqrt());
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zorder::cell_id;
    use proptest::prelude::*;

    fn set_from_coords(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    #[test]
    fn paper_example3_distances() {
        // Example 2/3: S_D1 = {9, 11}, S_D2 = {1, 3}, S_D3 = {12, 13} on the
        // 4x4 grid of Fig. 2; dist(D1,D2) = 1, dist(D1,D3) = 1,
        // dist(D2,D3) = sqrt(2).
        let d1 = CellSet::from_cells([9u64, 11]);
        let d2 = CellSet::from_cells([1u64, 3]);
        let d3 = CellSet::from_cells([12u64, 13]);
        assert_eq!(dataset_distance(&d1, &d2), 1.0);
        assert_eq!(dataset_distance(&d1, &d3), 1.0);
        assert!((dataset_distance(&d2, &d3) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn overlapping_sets_have_zero_distance() {
        let a = set_from_coords(&[(1, 1), (2, 2)]);
        let b = set_from_coords(&[(2, 2), (5, 5)]);
        assert_eq!(dataset_distance(&a, &b), 0.0);
        assert!(dataset_distance_within(&a, &b, 0.0));
    }

    #[test]
    fn empty_sets_are_infinitely_far() {
        let a = CellSet::new();
        let b = set_from_coords(&[(1, 1)]);
        assert_eq!(dataset_distance(&a, &b), f64::INFINITY);
        assert!(!dataset_distance_within(&a, &b, 100.0));
    }

    #[test]
    fn within_threshold_matches_exact() {
        let a = set_from_coords(&[(0, 0), (10, 0)]);
        let b = set_from_coords(&[(0, 5), (20, 20)]);
        assert_eq!(dataset_distance(&a, &b), 5.0);
        assert!(dataset_distance_within(&a, &b, 5.0));
        assert!(!dataset_distance_within(&a, &b, 4.999));
    }

    #[test]
    fn neighbor_probe_matches_within_check() {
        let a = set_from_coords(&[(0, 0), (10, 0), (20, 5)]);
        let b = set_from_coords(&[(0, 4), (30, 30)]);
        let probe = NeighborProbe::new(&a);
        assert!(probe.within(&b, 4.0));
        assert!(!probe.within(&b, 3.9));
        assert!(!NeighborProbe::new(&CellSet::new()).within(&b, 100.0));
        assert!(!probe.within(&CellSet::new(), 100.0));
        assert!(NeighborProbe::new(&CellSet::new()).is_empty());
    }

    proptest! {
        #[test]
        fn prop_probe_agrees_with_distance_within(
            a in proptest::collection::vec((0u32..40, 0u32..40), 1..25),
            b in proptest::collection::vec((0u32..40, 0u32..40), 1..25),
            delta in 0.0f64..30.0,
        ) {
            let sa = set_from_coords(&a);
            let sb = set_from_coords(&b);
            let probe = NeighborProbe::new(&sa);
            prop_assert_eq!(probe.within(&sb, delta), dataset_distance_within(&sa, &sb, delta));
        }

        #[test]
        fn prop_sweep_matches_bruteforce(
            a in proptest::collection::vec((0u32..64, 0u32..64), 1..40),
            b in proptest::collection::vec((0u32..64, 0u32..64), 1..40),
        ) {
            let sa = set_from_coords(&a);
            let sb = set_from_coords(&b);
            let fast = dataset_distance(&sa, &sb);
            let brute = dataset_distance_bruteforce(&sa, &sb);
            prop_assert!((fast - brute).abs() < 1e-9, "fast={fast} brute={brute}");
        }

        #[test]
        fn prop_distance_is_symmetric(
            a in proptest::collection::vec((0u32..64, 0u32..64), 1..30),
            b in proptest::collection::vec((0u32..64, 0u32..64), 1..30),
        ) {
            let sa = set_from_coords(&a);
            let sb = set_from_coords(&b);
            prop_assert_eq!(dataset_distance(&sa, &sb), dataset_distance(&sb, &sa));
        }

        #[test]
        fn prop_within_agrees_with_exact(
            a in proptest::collection::vec((0u32..32, 0u32..32), 1..25),
            b in proptest::collection::vec((0u32..32, 0u32..32), 1..25),
            delta in 0.0f64..50.0,
        ) {
            let sa = set_from_coords(&a);
            let sb = set_from_coords(&b);
            let exact = dataset_distance(&sa, &sb);
            prop_assert_eq!(dataset_distance_within(&sa, &sb, delta), exact <= delta);
        }
    }
}
