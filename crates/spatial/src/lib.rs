//! Spatial substrate for joinable spatial dataset search.
//!
//! This crate implements the data model of the paper *"Joinable Search over
//! Multi-source Spatial Datasets: Overlap, Coverage, and Efficiency"*:
//!
//! * [`Point`] — a longitude/latitude pair (Definition 1).
//! * [`SpatialDataset`] — a set of points (Definition 2).
//! * [`Mbr`] — minimum bounding rectangles used by every index node.
//! * [`Grid`] — the `2^θ × 2^θ` uniform grid partition of a bounded space
//!   (Definition 4) together with the z-order curve ([`zorder`]) that maps
//!   cell coordinates to integer cell IDs.
//! * [`CellSet`] — the cell-based representation of a dataset
//!   (Definition 5), with fast intersection / union-size primitives used by
//!   both the overlap (OJSP) and the coverage (CJSP) joinable search.
//! * [`connectivity`] — the directly / indirectly connected relations and the
//!   spatial-connectivity predicate over collections of cell sets
//!   (Definitions 6–9).
//!
//! Everything downstream (the DITS index, the baselines, the multi-source
//! framework) is built exclusively on this vocabulary.

#![warn(missing_docs)]

pub mod cellset;
pub mod connectivity;
pub mod dataset;
pub mod distance;
pub mod error;
pub mod grid;
pub mod mbr;
pub mod point;
pub mod zorder;

pub use cellset::{kernel_counters, CellSet, KernelCounters};
pub use connectivity::{is_directly_connected, satisfies_spatial_connectivity, ConnectivityGraph};
pub use dataset::{DatasetId, SourceId, SourceStats, SpatialDataset};
pub use distance::{dataset_distance, dataset_distance_within, NeighborProbe};
pub use error::SpatialError;
pub use grid::{Grid, GridConfig};
pub use mbr::Mbr;
pub use point::Point;
pub use zorder::{cell_coords, cell_id, CellId};
