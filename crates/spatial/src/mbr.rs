//! Minimum bounding rectangles.
//!
//! Every node of DITS, of the R-tree baseline and of the global index carries
//! an MBR (`rect` in Definition 12): the smallest axis-parallel rectangle
//! enclosing a set of points.  The branch-and-bound search of Algorithm 2
//! prunes subtrees whose MBR does not intersect the query MBR, so
//! intersection / containment / distance primitives live here.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned minimum bounding rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mbr {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Mbr {
    /// Creates an MBR from two corner points, normalising the corner order.
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// Creates a degenerate MBR containing a single point.
    pub fn from_point(p: Point) -> Self {
        Self { min: p, max: p }
    }

    /// Builds the MBR of a non-empty point iterator. Returns `None` when the
    /// iterator is empty.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut mbr = Mbr::from_point(first);
        for p in it {
            mbr.expand_point(&p);
        }
        Some(mbr)
    }

    /// Width of the rectangle along the x axis.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the rectangle along the y axis.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Extent along dimension `d` (0 = x, 1 = y).
    pub fn extent(&self, d: usize) -> f64 {
        match d {
            0 => self.width(),
            _ => self.height(),
        }
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// The pivot of the MBR: the average of the lower-left and upper-right
    /// corners (Definition 12).
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// Radius of the node: half of the farthest diagonal distance
    /// (Definition 12).
    pub fn radius(&self) -> f64 {
        self.min.distance(&self.max) / 2.0
    }

    /// Returns `true` when the two rectangles intersect (closed rectangles —
    /// touching borders count as intersecting, matching the paper's use of
    /// `N.rect ∩ N_Q.rect ≠ ∅`).
    pub fn intersects(&self, other: &Mbr) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Intersection of two MBRs, or `None` when they are disjoint.
    pub fn intersection(&self, other: &Mbr) -> Option<Mbr> {
        if !self.intersects(other) {
            return None;
        }
        Some(Mbr {
            min: self.min.max(&other.min),
            max: self.max.min(&other.max),
        })
    }

    /// Smallest MBR containing both rectangles.
    pub fn union(&self, other: &Mbr) -> Mbr {
        Mbr {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// Grows the rectangle to include `p`.
    pub fn expand_point(&mut self, p: &Point) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Grows the rectangle to include another rectangle.
    pub fn expand(&mut self, other: &Mbr) {
        self.min = self.min.min(&other.min);
        self.max = self.max.max(&other.max);
    }

    /// Returns `true` when `p` lies inside the rectangle (borders included).
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when `other` is completely contained in `self`.
    pub fn contains(&self, other: &Mbr) -> bool {
        self.contains_point(&other.min) && self.contains_point(&other.max)
    }

    /// Minimum Euclidean distance from a point to this rectangle (0 when the
    /// point is inside).
    pub fn min_distance_to_point(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum Euclidean distance between two rectangles (0 when they
    /// intersect).
    pub fn min_distance(&self, other: &Mbr) -> f64 {
        let dx = (self.min.x - other.max.x)
            .max(0.0)
            .max(other.min.x - self.max.x);
        let dy = (self.min.y - other.max.y)
            .max(0.0)
            .max(other.min.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// The increase in area needed to include `other` (used by the R-tree
    /// baseline's insertion heuristic).
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbr(x0: f64, y0: f64, x1: f64, y1: f64) -> Mbr {
        Mbr::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn new_normalises_corners() {
        let m = Mbr::new(Point::new(3.0, 1.0), Point::new(1.0, 5.0));
        assert_eq!(m.min, Point::new(1.0, 1.0));
        assert_eq!(m.max, Point::new(3.0, 5.0));
    }

    #[test]
    fn from_points_builds_tight_box() {
        let pts = vec![
            Point::new(2.0, 3.0),
            Point::new(-1.0, 7.0),
            Point::new(4.0, 0.5),
        ];
        let m = Mbr::from_points(pts).unwrap();
        assert_eq!(m.min, Point::new(-1.0, 0.5));
        assert_eq!(m.max, Point::new(4.0, 7.0));
        assert!(Mbr::from_points(Vec::new()).is_none());
    }

    #[test]
    fn geometry_accessors() {
        let m = mbr(0.0, 0.0, 4.0, 2.0);
        assert_eq!(m.width(), 4.0);
        assert_eq!(m.height(), 2.0);
        assert_eq!(m.extent(0), 4.0);
        assert_eq!(m.extent(1), 2.0);
        assert_eq!(m.area(), 8.0);
        assert_eq!(m.center(), Point::new(2.0, 1.0));
        assert!((m.radius() - (20.0f64).sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_and_union() {
        let a = mbr(0.0, 0.0, 4.0, 4.0);
        let b = mbr(2.0, 2.0, 6.0, 6.0);
        let c = mbr(5.0, 5.0, 7.0, 7.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&b).unwrap(), mbr(2.0, 2.0, 4.0, 4.0));
        assert!(a.intersection(&c).is_none());
        assert_eq!(a.union(&c), mbr(0.0, 0.0, 7.0, 7.0));
    }

    #[test]
    fn touching_borders_intersect() {
        let a = mbr(0.0, 0.0, 1.0, 1.0);
        let b = mbr(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).unwrap().area(), 0.0);
    }

    #[test]
    fn containment() {
        let outer = mbr(0.0, 0.0, 10.0, 10.0);
        let inner = mbr(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains_point(&Point::new(10.0, 10.0)));
        assert!(!outer.contains_point(&Point::new(10.1, 10.0)));
    }

    #[test]
    fn min_distances() {
        let a = mbr(0.0, 0.0, 1.0, 1.0);
        let b = mbr(4.0, 5.0, 6.0, 7.0);
        // dx = 3, dy = 4 -> distance 5
        assert_eq!(a.min_distance(&b), 5.0);
        assert_eq!(a.min_distance(&a), 0.0);
        assert_eq!(a.min_distance_to_point(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(a.min_distance_to_point(&Point::new(1.0, 4.0)), 3.0);
    }

    #[test]
    fn expand_and_enlargement() {
        let mut m = mbr(0.0, 0.0, 1.0, 1.0);
        m.expand_point(&Point::new(2.0, -1.0));
        assert_eq!(m, mbr(0.0, -1.0, 2.0, 1.0));
        let base = mbr(0.0, 0.0, 2.0, 2.0);
        let other = mbr(3.0, 0.0, 4.0, 2.0);
        // union is 4x2=8, base is 4 -> enlargement 4
        assert_eq!(base.enlargement(&other), 4.0);
        assert_eq!(base.enlargement(&mbr(0.5, 0.5, 1.0, 1.0)), 0.0);
    }
}
