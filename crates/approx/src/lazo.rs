//! Lazo-style coupled estimation of Jaccard similarity, containment and
//! overlap.
//!
//! Lazo (Fernandez et al., ICDE 2019 — reference \[25\] of the paper)
//! observed that when the *exact cardinalities* of both sets are known, a
//! single MinHash-style sketch can be redeemed for a consistent joint
//! estimate of the Jaccard similarity, the containment in both directions and
//! the intersection size, instead of estimating each quantity with a separate
//! index.  The cardinalities are free in this repository — every
//! [`spatial::CellSet`] knows its length — so a [`LazoSketch`] is just a
//! MinHash signature plus the cardinality, and [`LazoSketch::estimate`]
//! solves the one-unknown system
//!
//! ```text
//!   J   = |A ∩ B| / |A ∪ B|
//!   |A ∪ B| = |A| + |B| − |A ∩ B|
//! ```
//!
//! for the intersection, clamping the result into its feasible interval
//! `[max(0, |A|+|B|−|U|), min(|A|, |B|)]`.

use crate::minhash::{MinHasher, Signature};
use serde::{Deserialize, Serialize};
use spatial::{CellSet, DatasetId};

/// A sketch of one dataset suitable for Lazo-style estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LazoSketch {
    /// Identifier of the sketched dataset.
    pub dataset: DatasetId,
    /// MinHash signature of the dataset's cell set.
    pub signature: Signature,
}

/// A joint estimate of all similarity quantities between two sets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LazoEstimate {
    /// Estimated Jaccard similarity `|A ∩ B| / |A ∪ B|`.
    pub jaccard: f64,
    /// Estimated intersection size `|A ∩ B|`.
    pub overlap: f64,
    /// Estimated union size `|A ∪ B|`.
    pub union: f64,
    /// Estimated containment of the left set in the right, `|A ∩ B| / |A|`.
    pub containment_left: f64,
    /// Estimated containment of the right set in the left, `|A ∩ B| / |B|`.
    pub containment_right: f64,
}

impl LazoSketch {
    /// Sketches a dataset's cell set.
    pub fn build(hasher: &MinHasher, dataset: DatasetId, cells: &CellSet) -> Self {
        Self {
            dataset,
            signature: hasher.sketch(cells),
        }
    }

    /// Cardinality of the sketched set.
    pub fn cardinality(&self) -> usize {
        self.signature.cardinality()
    }

    /// Produces the coupled estimate between this sketch and another.
    ///
    /// Both sketches must come from the same [`MinHasher`] (same length and
    /// seed); mismatched lengths panic, mirroring
    /// [`Signature::matching_positions`].
    pub fn estimate(&self, other: &LazoSketch) -> LazoEstimate {
        let a = self.cardinality() as f64;
        let b = other.cardinality() as f64;
        if a == 0.0 || b == 0.0 {
            return LazoEstimate {
                jaccard: 0.0,
                overlap: 0.0,
                union: a + b,
                containment_left: 0.0,
                containment_right: 0.0,
            };
        }
        let j = self.signature.estimate_jaccard(&other.signature);
        // Solve J = I / (a + b − I)  ⇒  I = J (a + b) / (1 + J).
        let raw_overlap = if j > 0.0 {
            j * (a + b) / (1.0 + j)
        } else {
            0.0
        };
        // The intersection can never exceed the smaller set and never be
        // negative; clamping also repairs the estimate when the raw MinHash
        // agreement was noisy.
        let overlap = raw_overlap.clamp(0.0, a.min(b));
        let union = a + b - overlap;
        LazoEstimate {
            jaccard: if union > 0.0 { overlap / union } else { 0.0 },
            overlap,
            union,
            containment_left: overlap / a,
            containment_right: overlap / b,
        }
    }
}

/// Builds Lazo sketches for a whole collection of `(dataset, cells)` pairs.
pub fn sketch_collection<'a, I>(hasher: &MinHasher, entries: I) -> Vec<LazoSketch>
where
    I: IntoIterator<Item = (DatasetId, &'a CellSet)>,
{
    entries
        .into_iter()
        .map(|(id, cells)| LazoSketch::build(hasher, id, cells))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(ids: impl IntoIterator<Item = u64>) -> CellSet {
        CellSet::from_cells(ids)
    }

    #[test]
    fn estimate_of_identical_sets() {
        let hasher = MinHasher::new(128, 1);
        let cells = set(0..200u64);
        let a = LazoSketch::build(&hasher, 1, &cells);
        let b = LazoSketch::build(&hasher, 2, &cells);
        let est = a.estimate(&b);
        assert_eq!(est.jaccard, 1.0);
        assert_eq!(est.overlap, 200.0);
        assert_eq!(est.union, 200.0);
        assert_eq!(est.containment_left, 1.0);
        assert_eq!(est.containment_right, 1.0);
    }

    #[test]
    fn estimate_of_disjoint_sets() {
        let hasher = MinHasher::new(128, 2);
        let a = LazoSketch::build(&hasher, 1, &set(0..100u64));
        let b = LazoSketch::build(&hasher, 2, &set(10_000..10_100u64));
        let est = a.estimate(&b);
        assert!(est.jaccard < 0.05);
        assert!(est.overlap < 10.0);
        assert!(est.union > 180.0);
    }

    #[test]
    fn estimate_with_empty_set_is_zeroed() {
        let hasher = MinHasher::new(64, 3);
        let a = LazoSketch::build(&hasher, 1, &CellSet::new());
        let b = LazoSketch::build(&hasher, 2, &set(0..50u64));
        let est = a.estimate(&b);
        assert_eq!(est.overlap, 0.0);
        assert_eq!(est.jaccard, 0.0);
        assert_eq!(est.containment_left, 0.0);
        assert_eq!(est.containment_right, 0.0);
        assert_eq!(est.union, 50.0);
    }

    #[test]
    fn asymmetric_containment_of_a_subset() {
        let hasher = MinHasher::new(256, 4);
        let small = LazoSketch::build(&hasher, 1, &set(0..40u64));
        let large = LazoSketch::build(&hasher, 2, &set(0..400u64));
        let est = small.estimate(&large);
        assert!(
            est.containment_left > 0.7,
            "subset containment {} too low",
            est.containment_left
        );
        assert!(
            est.containment_right < 0.3,
            "superset containment {} too high",
            est.containment_right
        );
        // Exact overlap is 40; the estimate must land in the right ballpark.
        assert!((est.overlap - 40.0).abs() < 20.0, "overlap {}", est.overlap);
    }

    #[test]
    fn sketch_collection_builds_one_sketch_per_entry() {
        let hasher = MinHasher::new(32, 5);
        let a = set(0..10u64);
        let b = set(5..25u64);
        let sketches = sketch_collection(&hasher, [(7u32, &a), (9u32, &b)]);
        assert_eq!(sketches.len(), 2);
        assert_eq!(sketches[0].dataset, 7);
        assert_eq!(sketches[0].cardinality(), 10);
        assert_eq!(sketches[1].dataset, 9);
        assert_eq!(sketches[1].cardinality(), 20);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_estimates_are_feasible(
            a in proptest::collection::hash_set(0u64..3000, 1..200),
            b in proptest::collection::hash_set(0u64..3000, 1..200),
        ) {
            let hasher = MinHasher::new(96, 6);
            let sa = LazoSketch::build(&hasher, 0, &set(a.iter().copied()));
            let sb = LazoSketch::build(&hasher, 1, &set(b.iter().copied()));
            let est = sa.estimate(&sb);
            // Every estimated quantity must be inside its feasible interval.
            prop_assert!(est.overlap >= 0.0);
            prop_assert!(est.overlap <= a.len().min(b.len()) as f64 + 1e-9);
            prop_assert!(est.union >= a.len().max(b.len()) as f64 - 1e-9);
            prop_assert!(est.union <= (a.len() + b.len()) as f64 + 1e-9);
            prop_assert!((0.0..=1.0).contains(&est.jaccard));
            prop_assert!((0.0..=1.0).contains(&est.containment_left));
            prop_assert!((0.0..=1.0).contains(&est.containment_right));
            // Internal consistency: overlap = containment_left * |A|.
            prop_assert!((est.overlap - est.containment_left * a.len() as f64).abs() < 1e-6);
        }
    }
}
