//! MinHash signatures of cell-based datasets.
//!
//! A MinHash [`Signature`] summarises a [`CellSet`] by the minimum hash value
//! of its cells under each member of a [`HashFamily`].  For two sets the
//! probability that one signature position agrees equals their Jaccard
//! similarity, so the fraction of agreeing positions is an unbiased Jaccard
//! estimator with standard error `O(1/√len)`.
//!
//! Signatures are tiny (a few hundred `u64`s) compared to the cell sets of
//! the large portal datasets, which is what makes them attractive for
//! approximate candidate generation and for cheap cross-source exchanges in
//! the multi-source setting.

use crate::hashing::HashFamily;
use serde::{Deserialize, Serialize};
use spatial::CellSet;

/// A MinHash sketcher: a hash family plus the signature length.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHasher {
    family: HashFamily,
}

/// A fixed-length MinHash signature of one cell set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    values: Vec<u64>,
    /// Exact cardinality of the sketched set (cheap to carry along and needed
    /// by the Lazo-style estimators).
    cardinality: usize,
}

impl MinHasher {
    /// Creates a sketcher producing signatures of `len` values, seeded
    /// deterministically.
    pub fn new(len: usize, seed: u64) -> Self {
        Self {
            family: HashFamily::new(len, seed),
        }
    }

    /// Signature length.
    pub fn len(&self) -> usize {
        self.family.len()
    }

    /// Returns `true` when the sketcher has zero hash functions.
    pub fn is_empty(&self) -> bool {
        self.family.is_empty()
    }

    /// The underlying hash family (exposed so LSH banding can reuse it).
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// Sketches a cell set.
    ///
    /// An empty set produces the all-`u64::MAX` signature, which never agrees
    /// with any non-empty signature — matching the convention that the
    /// Jaccard similarity with an empty set is zero.
    pub fn sketch(&self, cells: &CellSet) -> Signature {
        let mut values = vec![u64::MAX; self.family.len()];
        for cell in cells.iter() {
            for (slot, h) in values.iter_mut().zip(self.family.hash_all(cell)) {
                if h < *slot {
                    *slot = h;
                }
            }
        }
        Signature {
            values,
            cardinality: cells.len(),
        }
    }
}

impl Signature {
    /// The raw signature values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Signature length.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the signature has zero positions.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Exact cardinality of the sketched set.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Number of positions at which the two signatures agree.
    ///
    /// # Panics
    ///
    /// Panics when the signatures have different lengths (they were produced
    /// by different sketchers and are not comparable).
    pub fn matching_positions(&self, other: &Signature) -> usize {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "signatures of different lengths are not comparable"
        );
        self.values
            .iter()
            .zip(other.values.iter())
            .filter(|(a, b)| a == b)
            .count()
    }

    /// Unbiased estimate of the Jaccard similarity `|A ∩ B| / |A ∪ B|`.
    pub fn estimate_jaccard(&self, other: &Signature) -> f64 {
        if self.cardinality == 0 && other.cardinality == 0 {
            // Both sets empty: Jaccard is conventionally 1 but an overlap of
            // zero; report 0 so downstream overlap estimates stay at zero.
            return 0.0;
        }
        if self.values.is_empty() {
            return 0.0;
        }
        self.matching_positions(other) as f64 / self.values.len() as f64
    }

    /// Estimate of the overlap `|A ∩ B|` derived from the Jaccard estimate
    /// and the exact cardinalities:
    /// `|A ∩ B| = J · |A ∪ B| = J · (|A| + |B|) / (1 + J)`.
    pub fn estimate_overlap(&self, other: &Signature) -> f64 {
        let j = self.estimate_jaccard(other);
        if j <= 0.0 {
            return 0.0;
        }
        let total = (self.cardinality + other.cardinality) as f64;
        (j * total / (1.0 + j)).min(self.cardinality.min(other.cardinality) as f64)
    }

    /// Estimate of the containment of `self` in `other`,
    /// `|A ∩ B| / |A|` (zero for an empty `self`).
    pub fn estimate_containment_in(&self, other: &Signature) -> f64 {
        if self.cardinality == 0 {
            return 0.0;
        }
        (self.estimate_overlap(other) / self.cardinality as f64).clamp(0.0, 1.0)
    }

    /// Estimated heap memory of the signature in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn set(ids: impl IntoIterator<Item = u64>) -> CellSet {
        CellSet::from_cells(ids)
    }

    fn exact_jaccard(a: &CellSet, b: &CellSet) -> f64 {
        let inter = a.intersection_size(b);
        let union = a.union_size(b);
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let hasher = MinHasher::new(64, 1);
        let a = set(0..100u64);
        let sa = hasher.sketch(&a);
        let sb = hasher.sketch(&a.clone());
        assert_eq!(sa.estimate_jaccard(&sb), 1.0);
        assert_eq!(sa.matching_positions(&sb), 64);
        assert_eq!(sa.cardinality(), 100);
    }

    #[test]
    fn disjoint_sets_have_near_zero_jaccard() {
        let hasher = MinHasher::new(128, 2);
        let a = set(0..200u64);
        let b = set(10_000..10_200u64);
        let j = hasher.sketch(&a).estimate_jaccard(&hasher.sketch(&b));
        // A few accidental matches are possible but must stay tiny.
        assert!(j < 0.05, "jaccard estimate {j} too high for disjoint sets");
    }

    #[test]
    fn empty_set_behaviour() {
        let hasher = MinHasher::new(32, 3);
        let empty = hasher.sketch(&CellSet::new());
        let full = hasher.sketch(&set(0..10u64));
        assert_eq!(empty.cardinality(), 0);
        assert_eq!(empty.estimate_jaccard(&full), 0.0);
        assert_eq!(empty.estimate_overlap(&full), 0.0);
        assert_eq!(empty.estimate_containment_in(&full), 0.0);
        assert_eq!(empty.estimate_jaccard(&empty), 0.0);
    }

    #[test]
    fn jaccard_estimate_close_to_exact_on_random_sets() {
        let hasher = MinHasher::new(256, 42);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let base: Vec<u64> = (0..400).map(|_| rng.random_range(0..5000u64)).collect();
            let shift: Vec<u64> = (0..200).map(|_| rng.random_range(0..5000u64)).collect();
            let a = set(base.clone());
            let b = set(base.iter().copied().take(200).chain(shift));
            let est = hasher.sketch(&a).estimate_jaccard(&hasher.sketch(&b));
            let exact = exact_jaccard(&a, &b);
            assert!(
                (est - exact).abs() < 0.15,
                "estimate {est} far from exact {exact}"
            );
        }
    }

    #[test]
    fn overlap_estimate_close_to_exact() {
        let hasher = MinHasher::new(256, 11);
        // |A| = 300, |B| = 300, overlap 150.
        let a = set(0..300u64);
        let b = set(150..450u64);
        let est = hasher.sketch(&a).estimate_overlap(&hasher.sketch(&b));
        assert!(
            (est - 150.0).abs() < 40.0,
            "overlap estimate {est} far from exact 150"
        );
    }

    #[test]
    fn containment_estimate_detects_subset() {
        let hasher = MinHasher::new(256, 12);
        let small = set(0..50u64);
        let large = set(0..500u64);
        let c = hasher
            .sketch(&small)
            .estimate_containment_in(&hasher.sketch(&large));
        assert!(
            c > 0.7,
            "containment estimate {c} too low for a true subset"
        );
        let reverse = hasher
            .sketch(&large)
            .estimate_containment_in(&hasher.sketch(&small));
        assert!(reverse < 0.3, "reverse containment {reverse} too high");
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn mismatched_signature_lengths_panic() {
        let a = MinHasher::new(16, 1).sketch(&set(0..10u64));
        let b = MinHasher::new(32, 1).sketch(&set(0..10u64));
        let _ = a.matching_positions(&b);
    }

    #[test]
    fn signatures_are_deterministic_across_sketchers_with_same_seed() {
        let a = MinHasher::new(64, 9).sketch(&set(0..64u64));
        let b = MinHasher::new(64, 9).sketch(&set(0..64u64));
        assert_eq!(a, b);
        assert!(a.memory_bytes() >= 64 * 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_jaccard_estimate_is_bounded_and_symmetric(
            a in proptest::collection::hash_set(0u64..2000, 1..150),
            b in proptest::collection::hash_set(0u64..2000, 1..150),
        ) {
            let hasher = MinHasher::new(96, 5);
            let sa = hasher.sketch(&set(a.iter().copied()));
            let sb = hasher.sketch(&set(b.iter().copied()));
            let jab = sa.estimate_jaccard(&sb);
            let jba = sb.estimate_jaccard(&sa);
            prop_assert!((0.0..=1.0).contains(&jab));
            prop_assert_eq!(jab, jba);
            // Overlap estimate can never exceed the smaller cardinality.
            prop_assert!(sa.estimate_overlap(&sb) <= a.len().min(b.len()) as f64 + 1e-9);
        }

        #[test]
        fn prop_identical_inputs_estimate_one(
            a in proptest::collection::hash_set(0u64..5000, 1..200),
        ) {
            let hasher = MinHasher::new(64, 8);
            let s1 = hasher.sketch(&set(a.iter().copied()));
            let s2 = hasher.sketch(&set(a.iter().copied()));
            prop_assert_eq!(s1.estimate_jaccard(&s2), 1.0);
        }
    }
}
