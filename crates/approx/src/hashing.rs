//! Parametric 64-bit hash functions.
//!
//! MinHash needs a *family* of independent hash functions over cell IDs.  A
//! seeded finalizer in the spirit of SplitMix64 gives excellent avalanche
//! behaviour for the dense integer keys produced by the z-order curve, is
//! allocation free, and keeps the whole crate free of external hashing
//! dependencies.

use serde::{Deserialize, Serialize};

/// One member of the hash family: a seeded 64-bit mixer.
///
/// The mixing constants are the SplitMix64 finalizer constants; the seed is
/// injected both before and after the first multiplication so that different
/// seeds produce (empirically) independent permutation orders over the cell
/// ID universe.
#[inline]
pub fn mix64(value: u64, seed: u64) -> u64 {
    let mut z = value ^ seed.rotate_left(25) ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(seed | 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A reproducible family of `n` independent hash functions.
///
/// The family is defined by a master seed; member `i` hashes through
/// [`mix64`] with a per-member seed derived from the master seed.  Two
/// families built with the same master seed and size are identical, which is
/// what lets signatures built by different data sources be compared at the
/// data center.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashFamily {
    seeds: Vec<u64>,
    master_seed: u64,
}

impl HashFamily {
    /// Creates a family of `n` hash functions from a master seed.
    pub fn new(n: usize, master_seed: u64) -> Self {
        // Derive per-member seeds by hashing the member index with the master
        // seed; this keeps members decorrelated even for adjacent indices.
        let seeds = (0..n as u64)
            .map(|i| mix64(i.wrapping_add(0xA076_1D64_78BD_642F), master_seed))
            .collect();
        Self { seeds, master_seed }
    }

    /// Number of hash functions in the family.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Returns `true` when the family is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// The master seed the family was derived from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Applies hash function `i` to `value`.
    #[inline]
    pub fn hash(&self, i: usize, value: u64) -> u64 {
        mix64(value, self.seeds[i])
    }

    /// Applies every member to `value`, yielding one hash per member.
    pub fn hash_all<'a>(&'a self, value: u64) -> impl Iterator<Item = u64> + 'a {
        self.seeds.iter().map(move |&s| mix64(value, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_deterministic_and_seed_sensitive() {
        assert_eq!(mix64(42, 1), mix64(42, 1));
        assert_ne!(mix64(42, 1), mix64(42, 2));
        assert_ne!(mix64(42, 1), mix64(43, 1));
    }

    #[test]
    fn mix64_has_no_obvious_collisions_on_small_domain() {
        // All 2^16 consecutive values must hash to distinct outputs — a
        // minimal sanity check that the mixer is a permutation-like map on
        // the dense cell-ID domains we feed it.
        let mut seen = HashSet::new();
        for v in 0u64..65_536 {
            assert!(seen.insert(mix64(v, 7)), "collision at {v}");
        }
    }

    #[test]
    fn family_members_are_independent_orderings() {
        let family = HashFamily::new(8, 99);
        assert_eq!(family.len(), 8);
        assert!(!family.is_empty());
        assert_eq!(family.master_seed(), 99);
        // Member 0 and member 1 must rank at least one of many value pairs in
        // a different order (otherwise they would be the same permutation);
        // checking 64 pairs makes an accidental full agreement practically
        // impossible for genuinely independent members.
        let disagreements = (0..64u64)
            .filter(|&i| {
                let pair = (i * 2, i * 2 + 1);
                let order0 = family.hash(0, pair.0) < family.hash(0, pair.1);
                let order1 = family.hash(1, pair.0) < family.hash(1, pair.1);
                order0 != order1
            })
            .count();
        assert!(
            disagreements > 0,
            "members 0 and 1 ordered all 64 test pairs identically"
        );
    }

    #[test]
    fn same_seed_gives_identical_family() {
        let a = HashFamily::new(16, 5);
        let b = HashFamily::new(16, 5);
        for i in 0..16 {
            assert_eq!(a.hash(i, 12345), b.hash(i, 12345));
        }
        let c = HashFamily::new(16, 6);
        assert_ne!(a.hash(0, 12345), c.hash(0, 12345));
    }

    #[test]
    fn hash_all_yields_one_value_per_member() {
        let family = HashFamily::new(5, 3);
        let values: Vec<u64> = family.hash_all(77).collect();
        assert_eq!(values.len(), 5);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(*v, family.hash(i, 77));
        }
    }

    #[test]
    fn empty_family_is_usable() {
        let family = HashFamily::new(0, 1);
        assert!(family.is_empty());
        assert_eq!(family.hash_all(1).count(), 0);
    }
}
