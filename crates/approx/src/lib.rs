//! Approximate joinable search over cell-based spatial datasets.
//!
//! The paper's OverlapSearch (and the Josie / STS3 baselines) compute *exact*
//! set overlaps.  Its related-work section surveys a family of approximate
//! techniques — MinHash-based sketches, LSH Ensemble \[74\] and the Lazo
//! cardinality-based estimator \[25\] — that trade a small amount of accuracy
//! for sub-linear candidate generation.  This crate implements that family on
//! top of the same [`spatial::CellSet`] vocabulary so the exact and the
//! approximate paths can be compared head to head:
//!
//! * [`MinHasher`] / [`Signature`] — fixed-length MinHash sketches of cell
//!   sets with unbiased Jaccard estimation.
//! * [`lazo`] — Lazo-style coupled estimation of Jaccard similarity,
//!   containment and overlap from a signature pair plus the (exactly known)
//!   set cardinalities.
//! * [`LshEnsemble`] — a containment-oriented banding index partitioned by
//!   set size, used to generate candidates for a query without touching
//!   every indexed dataset.
//! * [`ApproxOverlapIndex`] — the end-to-end approximate OJSP pipeline:
//!   LSH candidate generation, sketch-based ranking, and optional exact
//!   re-ranking of the shortlist, together with recall evaluation helpers
//!   against the exact top-k.
//!
//! Everything is deterministic given the hasher seed, so experiments comparing
//! exact and approximate search are reproducible.

#![warn(missing_docs)]

pub mod hashing;
pub mod lazo;
pub mod lshensemble;
pub mod minhash;
pub mod search;

pub use hashing::HashFamily;
pub use lazo::{LazoEstimate, LazoSketch};
pub use lshensemble::{LshConfig, LshEnsemble};
pub use minhash::{MinHasher, Signature};
pub use search::{recall_at_k, ApproxConfig, ApproxOverlapIndex, ApproxResult};
