//! LSH Ensemble: a containment-oriented candidate index over MinHash
//! signatures.
//!
//! LSH Ensemble (Zhu et al., VLDB 2016 — reference \[74\] of the paper)
//! adapts banded MinHash LSH to *containment* search, where the relevant
//! similarity is `|Q ∩ X| / |Q|` rather than the Jaccard similarity.  Because
//! a fixed Jaccard threshold discriminates poorly when indexed sets vary
//! wildly in size, the ensemble partitions the indexed sets by cardinality
//! and converts the query's containment threshold into a per-partition
//! Jaccard threshold using the partition's upper size bound:
//!
//! ```text
//!   J ≥ t·|Q| / (|Q| + u − t·|Q|)      (u = partition upper size bound)
//! ```
//!
//! Each partition stores a classic `b × r` banding of the signatures; a
//! candidate is emitted when it collides with the query in at least one band
//! of a partition whose converted threshold the banding is tuned for.
//!
//! The implementation favours clarity over the last drop of recall tuning:
//! bands are re-derived per query from the converted threshold, so the same
//! index answers any containment threshold without rebuilding.

use crate::hashing::mix64;
use crate::minhash::{MinHasher, Signature};
use serde::{Deserialize, Serialize};
use spatial::{CellSet, DatasetId};
use std::collections::HashMap;

/// Configuration of the ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LshConfig {
    /// Signature length (number of MinHash functions).
    pub signature_len: usize,
    /// Number of cardinality partitions.
    pub partitions: usize,
    /// Number of rows per band used when probing (the number of bands is
    /// `signature_len / rows_per_band`).
    pub rows_per_band: usize,
    /// Seed of the underlying hash family.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self {
            signature_len: 128,
            partitions: 8,
            rows_per_band: 4,
            seed: 0x15AE_57D1,
        }
    }
}

/// One indexed entry: the dataset id, its signature and cardinality.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    dataset: DatasetId,
    signature: Signature,
}

/// One cardinality partition: entries whose set size lies in
/// `[lower, upper]`, plus band buckets for fast collision probing.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Partition {
    lower: usize,
    upper: usize,
    entries: Vec<Entry>,
    /// `buckets[band] : band-hash -> entry indices`.
    buckets: Vec<HashMap<u64, Vec<usize>>>,
}

/// The LSH Ensemble index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LshEnsemble {
    config: LshConfig,
    hasher: MinHasher,
    partitions: Vec<Partition>,
    dataset_count: usize,
}

impl LshEnsemble {
    /// Builds the ensemble over a collection of `(dataset, cells)` pairs.
    ///
    /// Partition boundaries are chosen so each partition holds roughly the
    /// same number of datasets (equi-depth partitioning over cardinality),
    /// which is the strategy the LSH Ensemble paper found most robust to
    /// skewed size distributions.
    pub fn build<'a, I>(entries: I, config: LshConfig) -> Self
    where
        I: IntoIterator<Item = (DatasetId, &'a CellSet)>,
    {
        let config = LshConfig {
            signature_len: config.signature_len.max(1),
            partitions: config.partitions.max(1),
            rows_per_band: config.rows_per_band.clamp(1, config.signature_len.max(1)),
            seed: config.seed,
        };
        let hasher = MinHasher::new(config.signature_len, config.seed);
        let mut sketched: Vec<Entry> = entries
            .into_iter()
            .map(|(dataset, cells)| Entry {
                dataset,
                signature: hasher.sketch(cells),
            })
            .collect();
        let dataset_count = sketched.len();
        // Equi-depth partition by cardinality.
        sketched.sort_by_key(|e| e.signature.cardinality());
        let per_partition = sketched.len().div_ceil(config.partitions).max(1);
        let mut partitions = Vec::new();
        for chunk in sketched.chunks(per_partition) {
            let lower = chunk
                .first()
                .map(|e| e.signature.cardinality())
                .unwrap_or(0);
            let upper = chunk.last().map(|e| e.signature.cardinality()).unwrap_or(0);
            let mut partition = Partition {
                lower,
                upper,
                entries: chunk.to_vec(),
                buckets: Vec::new(),
            };
            partition.rebuild_buckets(config.rows_per_band);
            partitions.push(partition);
        }
        Self {
            config,
            hasher,
            partitions,
            dataset_count,
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> LshConfig {
        self.config
    }

    /// The sketcher used by the index (share it to sketch queries).
    pub fn hasher(&self) -> &MinHasher {
        &self.hasher
    }

    /// Number of indexed datasets.
    pub fn dataset_count(&self) -> usize {
        self.dataset_count
    }

    /// Number of cardinality partitions actually materialised.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The `[lower, upper]` cardinality bounds of each partition, in
    /// ascending order.  Diagnostic view of the equi-depth partitioning.
    pub fn partition_bounds(&self) -> Vec<(usize, usize)> {
        self.partitions.iter().map(|p| (p.lower, p.upper)).collect()
    }

    /// Estimated heap memory of the index in bytes.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for p in &self.partitions {
            bytes += p
                .entries
                .iter()
                .map(|e| e.signature.memory_bytes() + std::mem::size_of::<Entry>())
                .sum::<usize>();
            for band in &p.buckets {
                bytes += band
                    .values()
                    .map(|v| v.capacity() * std::mem::size_of::<usize>() + 16)
                    .sum::<usize>();
            }
        }
        bytes
    }

    /// Returns candidate datasets whose estimated containment of the query
    /// (`|Q ∩ X| / |Q|`) may reach `threshold ∈ [0, 1]`.
    ///
    /// Candidates are generated per partition by probing the bands whose
    /// collision probability is meaningful for the partition's converted
    /// Jaccard threshold; partitions whose upper size bound cannot possibly
    /// reach the containment threshold are skipped entirely.
    pub fn query_candidates(&self, query: &CellSet, threshold: f64) -> Vec<DatasetId> {
        let threshold = threshold.clamp(0.0, 1.0);
        if query.is_empty() {
            return Vec::new();
        }
        let query_sig = self.hasher.sketch(query);
        let q = query.len() as f64;
        let mut out: Vec<DatasetId> = Vec::new();
        for partition in &self.partitions {
            if partition.entries.is_empty() {
                continue;
            }
            // A set of size u can contain at most u cells of the query, so a
            // containment of `threshold` needs u ≥ threshold·|Q|.
            if (partition.upper as f64) < threshold * q {
                continue;
            }
            // Convert the containment threshold to the partition's Jaccard
            // threshold using the upper size bound (the most permissive
            // conversion, so recall is preserved).
            let u = partition.upper as f64;
            let jaccard_threshold = if threshold <= 0.0 {
                0.0
            } else {
                (threshold * q) / (q + u - threshold * q)
            };
            partition.probe(
                &query_sig,
                jaccard_threshold,
                self.config.rows_per_band,
                &mut out,
            );
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Ranks the candidate datasets by estimated overlap with the query and
    /// returns the top `k` `(dataset, estimated overlap)` pairs.
    pub fn query_top_k(&self, query: &CellSet, k: usize, threshold: f64) -> Vec<(DatasetId, f64)> {
        let candidates = self.query_candidates(query, threshold);
        if candidates.is_empty() || k == 0 {
            return Vec::new();
        }
        let query_sig = self.hasher.sketch(query);
        let mut scored: Vec<(DatasetId, f64)> = Vec::with_capacity(candidates.len());
        for partition in &self.partitions {
            for entry in &partition.entries {
                if candidates.binary_search(&entry.dataset).is_ok() {
                    let overlap = query_sig.estimate_overlap(&entry.signature);
                    if overlap > 0.0 {
                        scored.push((entry.dataset, overlap));
                    }
                }
            }
        }
        scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

impl Partition {
    /// Rebuilds the per-band hash buckets from the stored entries.
    fn rebuild_buckets(&mut self, rows_per_band: usize) {
        let sig_len = self.entries.first().map(|e| e.signature.len()).unwrap_or(0);
        let bands = sig_len.checked_div(rows_per_band).unwrap_or(0);
        self.buckets = vec![HashMap::new(); bands];
        for (i, entry) in self.entries.iter().enumerate() {
            for band in 0..bands {
                let h = band_hash(&entry.signature, band, rows_per_band);
                self.buckets[band].entry(h).or_default().push(i);
            }
        }
    }

    /// Probes the partition's bands for entries colliding with the query in
    /// enough bands to plausibly reach `jaccard_threshold`.
    fn probe(
        &self,
        query_sig: &Signature,
        jaccard_threshold: f64,
        rows_per_band: usize,
        out: &mut Vec<DatasetId>,
    ) {
        let bands = self.buckets.len();
        // Banding with `b` bands of `r` rows is only sensitive around the
        // threshold `(1/b)^(1/r)`; a requested threshold far below that would
        // be missed by collisions almost surely, so fall back to a scan of
        // the partition with the sketch-estimated Jaccard as the filter
        // (still signature-only — no cell sets are touched).
        let banding_floor = if bands == 0 {
            f64::INFINITY
        } else {
            0.5 * (1.0 / bands as f64).powf(1.0 / rows_per_band.max(1) as f64)
        };
        if bands == 0 || jaccard_threshold < banding_floor {
            for entry in &self.entries {
                if query_sig.estimate_jaccard(&entry.signature) + 1e-9 >= jaccard_threshold {
                    out.push(entry.dataset);
                }
            }
            return;
        }
        // Collision counting: an entry colliding with the query in at least
        // one band is a candidate; the estimated Jaccard filter below removes
        // flagrant false positives while keeping the shortlist cheap.
        let mut collision_counts: HashMap<usize, usize> = HashMap::new();
        for band in 0..bands {
            let h = band_hash(query_sig, band, rows_per_band);
            if let Some(bucket) = self.buckets[band].get(&h) {
                for &idx in bucket {
                    *collision_counts.entry(idx).or_insert(0) += 1;
                }
            }
        }
        for (idx, _count) in collision_counts {
            let entry = &self.entries[idx];
            if query_sig.estimate_jaccard(&entry.signature) + 1e-9 >= jaccard_threshold {
                out.push(entry.dataset);
            }
        }
    }
}

/// Hash of one band (a contiguous run of `rows_per_band` signature values).
fn band_hash(signature: &Signature, band: usize, rows_per_band: usize) -> u64 {
    let start = band * rows_per_band;
    let end = (start + rows_per_band).min(signature.len());
    let mut acc = 0xcbf2_9ce4_8422_2325u64 ^ (band as u64);
    for &v in &signature.values()[start..end] {
        acc = mix64(acc ^ v, 0x100_0000_01b3);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn set(ids: impl IntoIterator<Item = u64>) -> CellSet {
        CellSet::from_cells(ids)
    }

    fn config() -> LshConfig {
        LshConfig {
            signature_len: 128,
            partitions: 4,
            rows_per_band: 4,
            seed: 7,
        }
    }

    #[test]
    fn partition_bounds_are_ordered_and_nested() {
        let sets: Vec<CellSet> = (1..40u64).map(|n| set(0..n * 5)).collect();
        let index = LshEnsemble::build(
            sets.iter().enumerate().map(|(i, s)| (i as u32, s)),
            config(),
        );
        let bounds = index.partition_bounds();
        assert_eq!(bounds.len(), index.partition_count());
        for &(lower, upper) in &bounds {
            assert!(lower <= upper);
        }
        // Equi-depth partitions over sorted cardinalities do not overlap out
        // of order: each partition starts at or after the previous one ends.
        for w in bounds.windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
    }

    #[test]
    fn finds_a_near_duplicate_of_the_query() {
        let near: CellSet = set(0..100u64);
        let far: CellSet = set(5_000..5_100u64);
        let partial: CellSet = set(50..150u64);
        let index = LshEnsemble::build([(1u32, &near), (2u32, &far), (3u32, &partial)], config());
        let query = set(0..100u64);
        let candidates = index.query_candidates(&query, 0.5);
        assert!(candidates.contains(&1), "near-duplicate not retrieved");
        assert!(!candidates.contains(&2), "disjoint set retrieved");
        let top = index.query_top_k(&query, 2, 0.2);
        assert_eq!(top[0].0, 1);
        assert!(top[0].1 > top.get(1).map(|t| t.1).unwrap_or(0.0));
    }

    #[test]
    fn empty_query_and_empty_index() {
        let index = LshEnsemble::build(std::iter::empty(), config());
        assert_eq!(index.dataset_count(), 0);
        assert!(index.query_candidates(&set(0..10u64), 0.5).is_empty());
        let a = set(0..10u64);
        let index = LshEnsemble::build([(1u32, &a)], config());
        assert!(index.query_candidates(&CellSet::new(), 0.5).is_empty());
        assert!(index.query_top_k(&CellSet::new(), 3, 0.5).is_empty());
        assert!(index.query_top_k(&a, 0, 0.5).is_empty());
    }

    #[test]
    fn partitions_skip_sets_too_small_for_the_threshold() {
        // Query of 100 cells; a dataset of 10 cells can contain at most 10%
        // of it, so with threshold 0.5 it must be skipped by the size filter.
        let tiny = set(0..10u64);
        let big = set(0..90u64);
        let index = LshEnsemble::build([(1u32, &tiny), (2u32, &big)], config());
        let query = set(0..100u64);
        let candidates = index.query_candidates(&query, 0.5);
        assert!(!candidates.contains(&1));
        assert!(candidates.contains(&2));
        // At threshold 0 every overlapping set is fair game.
        let all = index.query_candidates(&query, 0.0);
        assert!(all.contains(&1));
    }

    #[test]
    fn recall_is_high_for_strongly_overlapping_sets() {
        let mut rng = StdRng::seed_from_u64(3);
        let query_cells: Vec<u64> = (0..300u64).collect();
        let query = set(query_cells.iter().copied());
        // 30 datasets overlapping the query by 80%, 200 random background sets.
        let mut owned: Vec<(DatasetId, CellSet)> = Vec::new();
        for i in 0..30u32 {
            let mut cells: Vec<u64> = query_cells.iter().copied().take(240).collect();
            cells.extend((0..60).map(|_| 10_000 + rng.random_range(0..5_000u64)));
            owned.push((i, set(cells)));
        }
        for i in 30..230u32 {
            let cells: Vec<u64> = (0..200)
                .map(|_| 20_000 + rng.random_range(0..50_000u64))
                .collect();
            owned.push((i, set(cells)));
        }
        let index = LshEnsemble::build(owned.iter().map(|(i, c)| (*i, c)), config());
        let candidates = index.query_candidates(&query, 0.5);
        let hits = (0..30u32).filter(|i| candidates.contains(i)).count();
        assert!(
            hits >= 27,
            "only {hits}/30 strongly-overlapping sets retrieved"
        );
        // And the candidate list must be much smaller than the full corpus.
        assert!(
            candidates.len() < 120,
            "candidate list of {} is not selective",
            candidates.len()
        );
    }

    #[test]
    fn index_statistics_are_reported() {
        let sets: Vec<CellSet> = (0..40u64).map(|i| set(i * 10..i * 10 + 20)).collect();
        let index = LshEnsemble::build(
            sets.iter().enumerate().map(|(i, s)| (i as u32, s)),
            config(),
        );
        assert_eq!(index.dataset_count(), 40);
        assert!(index.partition_count() >= 1 && index.partition_count() <= 4);
        assert!(index.memory_bytes() > 0);
        assert_eq!(index.config().signature_len, 128);
        assert_eq!(index.hasher().len(), 128);
    }

    #[test]
    fn degenerate_config_is_repaired() {
        let a = set(0..5u64);
        let index = LshEnsemble::build(
            [(1u32, &a)],
            LshConfig {
                signature_len: 0,
                partitions: 0,
                rows_per_band: 0,
                seed: 1,
            },
        );
        assert_eq!(index.dataset_count(), 1);
        // The repaired index must still answer queries without panicking.
        let candidates = index.query_candidates(&a, 0.1);
        assert_eq!(candidates, vec![1]);
    }
}
