//! End-to-end approximate overlap joinable search.
//!
//! [`ApproxOverlapIndex`] wires the pieces of this crate into the same
//! "top-k datasets by overlap with the query" contract as the exact
//! [`dits::overlap_search`]:
//!
//! 1. the LSH Ensemble produces a candidate shortlist without touching every
//!    indexed dataset,
//! 2. the candidates are ranked by their sketch-estimated overlap, and
//! 3. (optionally) the top of the shortlist is re-ranked with *exact*
//!    intersection counts, which restores exact scores while still skipping
//!    the vast majority of the corpus.
//!
//! [`recall_at_k`] measures how much of the exact top-k an approximate result
//! recovers, which is the metric the approximate-vs-exact benchmark reports.

use crate::lshensemble::{LshConfig, LshEnsemble};
use dits::OverlapResult;
use serde::{Deserialize, Serialize};
use spatial::{CellSet, DatasetId};
use std::collections::HashMap;

/// Configuration of the approximate overlap index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApproxConfig {
    /// LSH Ensemble configuration (signature length, partitions, banding).
    pub lsh: LshConfig,
    /// Containment threshold used for candidate generation; lower values
    /// retrieve more candidates (higher recall, more work).
    pub candidate_threshold: f64,
    /// When `true`, the shortlist is re-ranked with exact intersection
    /// counts before the final top-k is returned.
    pub exact_rerank: bool,
    /// How many shortlist entries to re-rank exactly, as a multiple of `k`
    /// (e.g. `4` re-ranks the `4·k` best-estimated candidates).
    pub rerank_factor: usize,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        Self {
            lsh: LshConfig::default(),
            candidate_threshold: 0.05,
            exact_rerank: true,
            rerank_factor: 4,
        }
    }
}

/// One approximate search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproxResult {
    /// The dataset's identifier.
    pub dataset: DatasetId,
    /// Estimated (or, after exact re-ranking, exact) overlap with the query.
    pub overlap: f64,
    /// Whether the reported overlap is an exact count.
    pub exact: bool,
}

/// An approximate overlap-search index over the datasets of one source.
#[derive(Debug, Clone)]
pub struct ApproxOverlapIndex {
    config: ApproxConfig,
    lsh: LshEnsemble,
    /// Cell sets kept for exact re-ranking (and recall evaluation).  They are
    /// stored once, not per leaf, so the memory overhead versus the pure
    /// sketch index is the corpus itself.
    cells: HashMap<DatasetId, CellSet>,
}

impl ApproxOverlapIndex {
    /// Builds the index over `(dataset, cells)` pairs.
    pub fn build<'a, I>(entries: I, config: ApproxConfig) -> Self
    where
        I: IntoIterator<Item = (DatasetId, &'a CellSet)>,
    {
        let owned: Vec<(DatasetId, CellSet)> = entries
            .into_iter()
            .map(|(id, cells)| (id, cells.clone()))
            .collect();
        let lsh = LshEnsemble::build(owned.iter().map(|(id, c)| (*id, c)), config.lsh);
        Self {
            config,
            lsh,
            cells: owned.into_iter().collect(),
        }
    }

    /// The configuration used to build the index.
    pub fn config(&self) -> ApproxConfig {
        self.config
    }

    /// Number of indexed datasets.
    pub fn dataset_count(&self) -> usize {
        self.cells.len()
    }

    /// Estimated heap memory of the sketch structures in bytes (excluding the
    /// retained cell sets, which every exact index also stores).
    pub fn sketch_memory_bytes(&self) -> usize {
        self.lsh.memory_bytes()
    }

    /// Approximate top-`k` overlap search.
    pub fn search(&self, query: &CellSet, k: usize) -> Vec<ApproxResult> {
        if k == 0 || query.is_empty() || self.cells.is_empty() {
            return Vec::new();
        }
        let shortlist_len = if self.config.exact_rerank {
            k.saturating_mul(self.config.rerank_factor.max(1))
        } else {
            k
        };
        let estimated =
            self.lsh
                .query_top_k(query, shortlist_len.max(k), self.config.candidate_threshold);
        let mut results: Vec<ApproxResult> = if self.config.exact_rerank {
            estimated
                .into_iter()
                .filter_map(|(dataset, _est)| {
                    let cells = self.cells.get(&dataset)?;
                    let overlap = cells.intersection_size(query);
                    (overlap > 0).then_some(ApproxResult {
                        dataset,
                        overlap: overlap as f64,
                        exact: true,
                    })
                })
                .collect()
        } else {
            estimated
                .into_iter()
                .map(|(dataset, overlap)| ApproxResult {
                    dataset,
                    overlap,
                    exact: false,
                })
                .collect()
        };
        results.sort_unstable_by(|a, b| {
            b.overlap
                .total_cmp(&a.overlap)
                .then(a.dataset.cmp(&b.dataset))
        });
        results.truncate(k);
        results
    }

    /// Exact brute-force top-`k`, used as the ground truth for recall
    /// measurements (it scans the retained cell sets directly).
    pub fn exact_top_k(&self, query: &CellSet, k: usize) -> Vec<OverlapResult> {
        let mut all: Vec<OverlapResult> = self
            .cells
            .iter()
            .map(|(&dataset, cells)| OverlapResult {
                dataset,
                overlap: cells.intersection_size(query),
            })
            .filter(|r| r.overlap > 0)
            .collect();
        all.sort_unstable_by(|a, b| b.overlap.cmp(&a.overlap).then(a.dataset.cmp(&b.dataset)));
        all.truncate(k);
        all
    }
}

/// Recall@k of an approximate result list against the exact top-k: the
/// fraction of exact results whose *overlap value* is matched or exceeded by
/// a returned dataset with the same rank budget.
///
/// Datasets are compared by id; ties in the exact ranking mean several
/// result lists are equally correct, so recall is computed on ids that appear
/// in *some* optimal top-k: a returned dataset counts as a hit when its exact
/// overlap is at least the k-th best exact overlap.
pub fn recall_at_k(
    approx: &[ApproxResult],
    exact: &[OverlapResult],
    corpus: &HashMap<DatasetId, CellSet>,
    query: &CellSet,
) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let kth_best = exact.last().map(|r| r.overlap).unwrap_or(0);
    let hits = approx
        .iter()
        .filter(|r| {
            corpus
                .get(&r.dataset)
                .map(|cells| cells.intersection_size(query) >= kth_best)
                .unwrap_or(false)
        })
        .count();
    (hits.min(exact.len())) as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn set(ids: impl IntoIterator<Item = u64>) -> CellSet {
        CellSet::from_cells(ids)
    }

    /// A corpus of 200 datasets where datasets 0..10 heavily overlap the
    /// query and the rest are background noise.
    fn corpus(seed: u64) -> (Vec<(DatasetId, CellSet)>, CellSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let query_cells: Vec<u64> = (0..200u64).collect();
        let mut owned = Vec::new();
        for i in 0..10u32 {
            let take = 150 - (i as usize * 10);
            let mut cells: Vec<u64> = query_cells.iter().copied().take(take).collect();
            cells.extend((0..50).map(|_| 10_000 + rng.random_range(0..5_000u64)));
            owned.push((i, set(cells)));
        }
        for i in 10..200u32 {
            let cells: Vec<u64> = (0..100)
                .map(|_| 20_000 + rng.random_range(0..40_000u64))
                .collect();
            owned.push((i, set(cells)));
        }
        (owned, set(query_cells))
    }

    #[test]
    fn exact_rerank_recovers_the_true_ranking() {
        let (owned, query) = corpus(1);
        let index =
            ApproxOverlapIndex::build(owned.iter().map(|(i, c)| (*i, c)), ApproxConfig::default());
        let results = index.search(&query, 5);
        assert_eq!(results.len(), 5);
        assert!(results.iter().all(|r| r.exact));
        // With exact re-ranking, the best dataset must be dataset 0 (150
        // overlapping cells) and scores must be non-increasing.
        assert_eq!(results[0].dataset, 0);
        assert_eq!(results[0].overlap, 150.0);
        for w in results.windows(2) {
            assert!(w[0].overlap >= w[1].overlap);
        }
    }

    #[test]
    fn estimated_mode_reports_non_exact_scores() {
        let (owned, query) = corpus(2);
        let index = ApproxOverlapIndex::build(
            owned.iter().map(|(i, c)| (*i, c)),
            ApproxConfig {
                exact_rerank: false,
                ..ApproxConfig::default()
            },
        );
        let results = index.search(&query, 5);
        assert!(!results.is_empty());
        assert!(results.iter().all(|r| !r.exact));
        // The strongest overlapper should still surface near the top.
        assert!(results.iter().take(3).any(|r| r.dataset < 3));
    }

    #[test]
    fn recall_against_exact_top_k_is_high() {
        let (owned, query) = corpus(3);
        let index =
            ApproxOverlapIndex::build(owned.iter().map(|(i, c)| (*i, c)), ApproxConfig::default());
        let approx = index.search(&query, 8);
        let exact = index.exact_top_k(&query, 8);
        let corpus_map: HashMap<DatasetId, CellSet> = owned.into_iter().collect();
        let recall = recall_at_k(&approx, &exact, &corpus_map, &query);
        assert!(recall >= 0.75, "recall {recall} too low");
    }

    #[test]
    fn degenerate_inputs() {
        let (owned, query) = corpus(4);
        let index =
            ApproxOverlapIndex::build(owned.iter().map(|(i, c)| (*i, c)), ApproxConfig::default());
        assert!(index.search(&query, 0).is_empty());
        assert!(index.search(&CellSet::new(), 5).is_empty());
        let empty = ApproxOverlapIndex::build(std::iter::empty(), ApproxConfig::default());
        assert_eq!(empty.dataset_count(), 0);
        assert!(empty.search(&query, 5).is_empty());
        assert!(empty.exact_top_k(&query, 5).is_empty());
    }

    #[test]
    fn recall_of_empty_exact_list_is_one() {
        let corpus_map: HashMap<DatasetId, CellSet> = HashMap::new();
        assert_eq!(recall_at_k(&[], &[], &corpus_map, &CellSet::new()), 1.0);
    }

    #[test]
    fn sketch_memory_is_smaller_than_corpus_memory() {
        let (owned, _query) = corpus(5);
        let index =
            ApproxOverlapIndex::build(owned.iter().map(|(i, c)| (*i, c)), ApproxConfig::default());
        let corpus_bytes: usize = owned.iter().map(|(_, c)| c.memory_bytes()).sum();
        assert!(index.sketch_memory_bytes() > 0);
        assert_eq!(index.dataset_count(), 200);
        assert!(index.config().exact_rerank);
        // The sketches must cost less than an order of magnitude more than
        // the raw corpus (they are summaries, not copies).
        assert!(index.sketch_memory_bytes() < corpus_bytes * 10);
    }
}
