//! Behavioural tests of the pooled transport: reply correctness under
//! pipelining, typed failure modes (dead source, stalled source,
//! saturation), and the pool's observability counters.
//!
//! Full cross-transport invariance (byte-identical answers, CommStats,
//! SearchStats vs in-process, spawned server binaries) lives in
//! `crates/multisource/tests/transport.rs`, which dev-depends on this
//! crate.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use dits::DitsLocalConfig;
use multisource::transport::{InProcessTransport, SourceServer, SourceTransport};
use multisource::{DataSource, Message, TransportError};
use net::{PoolConfig, PooledTcpTransport};
use spatial::{Grid, Point, SourceId, SpatialDataset};

fn tiny_source(id: SourceId) -> DataSource {
    let grid = Grid::global(10).expect("grid");
    let datasets: Vec<SpatialDataset> = (0..6)
        .map(|i| {
            SpatialDataset::new(
                i,
                (0..5)
                    .map(|j| Point::new(10.0 + i as f64 * 0.2 + j as f64 * 0.02, 50.0))
                    .collect(),
            )
        })
        .collect();
    DataSource::build(
        id,
        format!("s{id}"),
        grid,
        &datasets,
        DitsLocalConfig::default(),
    )
}

fn overlap_query(source: &DataSource, k: usize) -> Message {
    Message::OverlapQuery {
        query: source.grid_query(&SpatialDataset::new(99, vec![Point::new(10.2, 50.0)])),
        k,
    }
}

/// A listener that accepts connections and then never reads or replies —
/// the "stalled source" in timeout and saturation tests.
fn stalled_listener() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || {
        let mut held = Vec::new();
        for stream in listener.incoming() {
            match stream {
                Ok(s) => held.push(s),
                Err(_) => break,
            }
        }
    });
    addr
}

#[test]
fn pooled_roundtrip_matches_in_process() {
    let sources = vec![tiny_source(0), tiny_source(3)];
    let servers: Vec<SourceServer> = sources
        .iter()
        .map(|s| SourceServer::spawn("127.0.0.1:0", s.clone()).expect("spawn"))
        .collect();
    let pooled = PooledTcpTransport::new(servers.iter().map(|s| s.endpoint())).expect("transport");
    let in_process = InProcessTransport::new(&sources);
    assert_eq!(pooled.source_ids(), vec![0, 3]);

    for id in [0, 3] {
        let source = sources.iter().find(|s| s.id == id).expect("source");
        let query = overlap_query(source, 3);
        let a = pooled.call(id, &query, true).expect("pooled call");
        let b = in_process.call(id, &query, true).expect("in-process call");
        assert_eq!(a.message, b.message);
        assert_eq!(a.request_bytes, b.request_bytes);
        assert_eq!(a.reply_bytes, b.reply_bytes);
        assert_eq!(a.search, b.search);
    }
    assert_eq!(
        pooled
            .call(9, &overlap_query(&sources[0], 1), false)
            .unwrap_err(),
        TransportError::UnknownSource(9)
    );
    // The exchanges left at least one pooled connection open.
    assert!(pooled.metrics().open_connections.get() >= 1.0);
    assert_eq!(pooled.metrics().timeouts.get(), 0);
}

#[test]
fn pipelined_concurrent_calls_pair_replies_to_requests() {
    let source = tiny_source(0);
    let server = SourceServer::spawn("127.0.0.1:0", source.clone()).expect("spawn");
    let pooled = Arc::new(
        PooledTcpTransport::with_config(
            [server.endpoint()],
            PoolConfig {
                connections_per_source: 2,
                max_in_flight_per_source: 64,
                ..PoolConfig::default()
            },
        )
        .expect("transport"),
    );
    let sources = vec![source];
    let in_process = InProcessTransport::new(&sources);
    // Distinct k per caller: a mismatched correlation would pair a caller
    // with another caller's reply, which carries a different result count.
    let expected: Vec<Message> = (1..=8)
        .map(|k| {
            in_process
                .call(0, &overlap_query(&sources[0], k), false)
                .expect("in-process")
                .message
        })
        .collect();
    let handles: Vec<_> = (1..=8usize)
        .map(|k| {
            let pooled = Arc::clone(&pooled);
            let query = overlap_query(&sources[0], k);
            std::thread::spawn(move || {
                (1..=4)
                    .map(|_| pooled.call(0, &query, false).expect("pooled").message)
                    .collect::<Vec<Message>>()
            })
        })
        .collect();
    for (idx, handle) in handles.into_iter().enumerate() {
        let replies = handle.join().expect("join");
        for reply in replies {
            assert_eq!(
                reply,
                expected[idx],
                "caller k={} got a foreign reply",
                idx + 1
            );
        }
    }
    let open = pooled.metrics().open_connections.get();
    assert!(
        (1.0..=2.0).contains(&open),
        "pool must reuse its 2 connections, saw {open}"
    );
}

#[test]
fn dead_source_fails_fast_with_retries_exhausted() {
    // Bind-then-drop guarantees a port with nothing listening.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let pooled = PooledTcpTransport::with_config(
        [(0, addr.to_string())],
        PoolConfig {
            retries: 2,
            retry_backoff: Duration::from_millis(1),
            ..PoolConfig::default()
        },
    )
    .expect("transport");
    let query = Message::MetricsQuery;
    let started = std::time::Instant::now();
    let err = pooled.call(0, &query, false).expect_err("dead source");
    match err {
        TransportError::RetriesExhausted { attempts, last } => {
            assert_eq!(attempts, 3);
            assert!(matches!(*last, TransportError::Io(_)), "{last:?}");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    // Refused connections fail fast — nowhere near the 30 s call deadline.
    assert!(started.elapsed() < Duration::from_secs(10));
    assert_eq!(pooled.metrics().retries.get(), 2);
}

#[test]
fn stalled_source_times_out_with_typed_error() {
    let addr = stalled_listener();
    let pooled = PooledTcpTransport::with_config(
        [(5, addr.to_string())],
        PoolConfig {
            request_timeout: Duration::from_millis(200),
            retries: 0,
            ..PoolConfig::default()
        },
    )
    .expect("transport");
    let err = pooled
        .call(5, &Message::MetricsQuery, false)
        .expect_err("stalled source");
    match err {
        TransportError::Timeout { source, waited } => {
            assert_eq!(source, 5);
            assert!(waited >= Duration::from_millis(200));
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(pooled.metrics().timeouts.get() >= 1);
}

#[test]
fn saturated_source_sheds_with_backpressure() {
    let addr = stalled_listener();
    let pooled = Arc::new(
        PooledTcpTransport::with_config(
            [(1, addr.to_string())],
            PoolConfig {
                connections_per_source: 1,
                max_in_flight_per_source: 1,
                request_timeout: Duration::from_secs(2),
                retries: 0,
                ..PoolConfig::default()
            },
        )
        .expect("transport"),
    );
    // Fill the single in-flight slot and the single queue slot.
    let blocked: Vec<_> = (0..2)
        .map(|_| {
            let pooled = Arc::clone(&pooled);
            std::thread::spawn(move || pooled.call(1, &Message::MetricsQuery, false))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    let err = pooled
        .call(1, &Message::MetricsQuery, false)
        .expect_err("saturated source");
    assert_eq!(
        err,
        TransportError::Backpressure {
            source: 1,
            in_flight_cap: 1
        }
    );
    assert!(pooled.metrics().backpressure.get() >= 1);
    for handle in blocked {
        // The two admitted calls ripen into timeouts on the stalled source.
        let result = handle.join().expect("join");
        assert!(
            matches!(result, Err(TransportError::Timeout { .. })),
            "{result:?}"
        );
    }
}

#[test]
fn pool_metrics_register_in_a_shared_registry() {
    let registry = Arc::new(obs::MetricsRegistry::new());
    let source = tiny_source(0);
    let server = SourceServer::spawn("127.0.0.1:0", source.clone()).expect("spawn");
    let pooled = PooledTcpTransport::with_registry(
        [server.endpoint()],
        PoolConfig::default(),
        Arc::clone(&registry),
    )
    .expect("transport");
    pooled
        .call(0, &overlap_query(&source, 2), false)
        .expect("call");
    let snapshot = registry.snapshot();
    for name in [
        "net_pool_open_connections",
        "net_pool_in_flight",
        "net_pool_retries_total",
        "net_pool_timeouts_total",
        "net_pool_backpressure_total",
    ] {
        assert!(snapshot.find(name, &[]).is_some(), "missing {name}");
    }
}
