//! Event-driven federation transport.
//!
//! [`PooledTcpTransport`] implements `multisource::SourceTransport` over a
//! single epoll readiness loop (the vendored `mio` stand-in): per-source
//! connection pooling, request pipelining with frame-level correlation IDs,
//! per-source in-flight caps with backpressure, configurable timeouts, and
//! retry-with-backoff — all surfaced as typed `TransportError` variants so
//! the engine can skip-and-report a dead source instead of parking a batch.

mod pool;

pub use pool::{PoolConfig, PoolMetrics, PooledTcpTransport};
