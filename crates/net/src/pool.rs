//! The pooled, pipelined TCP transport.
//!
//! One background thread owns every socket and blocks only in
//! `epoll_wait`; caller threads (the engine's workers) submit pre-encoded
//! request frames through a command queue and park on a per-request
//! completion slot.  Per source there is a small pool of nonblocking
//! connections, each carrying several correlated frames in flight at once
//! (the server echoes the frame-level correlation id, so replies match
//! requests without ordering assumptions).  The correlation id rides the
//! *frame*, not the message, so the protocol bytes `CommStats` counts are
//! identical to every other transport — the PR 3 invariance suite holds.
//!
//! Failure policy, in order of preference:
//!
//! * a refused/reset connection fails only the calls on it, typed as
//!   [`TransportError::Io`] and retried with backoff up to the configured
//!   attempt budget ([`TransportError::RetriesExhausted`] when spent);
//! * a source that stops answering trips the per-call deadline, typed as
//!   [`TransportError::Timeout`] (never retried: the request may still be
//!   executing remotely);
//! * a saturated source — in-flight cap reached *and* the admission queue
//!   full — sheds new calls immediately as
//!   [`TransportError::Backpressure`], so a slow source never parks every
//!   caller thread.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use mio::{Events, Interest, Poll, Token, Waker};
use multisource::transport::{
    read_frame, write_frame, CallOptions, DecodedFrame, FrameError, ServedReply, SourceTransport,
    TransportReply, MAX_FRAME_BYTES,
};
use multisource::{Message, TransportError};
use obs::{Counter, Gauge, MetricsRegistry};
use spatial::SourceId;

/// Tuning knobs of the pooled transport.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Connections kept per source.  The server serves one frame at a time
    /// per connection, so this bounds per-source parallelism; pipelining
    /// on each connection hides connect/teardown and syscall latency.
    pub connections_per_source: usize,
    /// Per-source in-flight cap.  Calls beyond it queue (up to the same
    /// bound again) and then shed as [`TransportError::Backpressure`].
    pub max_in_flight_per_source: usize,
    /// Per-call reply deadline, measured from submission.
    pub request_timeout: Duration,
    /// Deadline for establishing one connection.
    pub connect_timeout: Duration,
    /// Retry budget for I/O-failed calls (attempts = `retries + 1`).
    /// Timeouts and remote rejections are never retried.
    pub retries: u32,
    /// Backoff before the first retry; doubles on each further one.
    pub retry_backoff: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            connections_per_source: 4,
            max_in_flight_per_source: 64,
            request_timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(5),
            retries: 2,
            retry_backoff: Duration::from_millis(10),
        }
    }
}

/// The pool's observability handles, registered once per transport.
#[derive(Debug, Clone)]
pub struct PoolMetrics {
    /// Currently established connections, across all sources.
    pub open_connections: Gauge,
    /// Requests currently on the wire awaiting replies, across all sources.
    pub in_flight: Gauge,
    /// Calls re-submitted after an I/O failure.
    pub retries: Counter,
    /// Calls that hit their reply deadline.
    pub timeouts: Counter,
    /// Calls shed because a source was saturated.
    pub backpressure: Counter,
}

impl PoolMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        Self {
            open_connections: registry.gauge("net_pool_open_connections", &[]),
            in_flight: registry.gauge("net_pool_in_flight", &[]),
            retries: registry.counter("net_pool_retries_total", &[]),
            timeouts: registry.counter("net_pool_timeouts_total", &[]),
            backpressure: registry.counter("net_pool_backpressure_total", &[]),
        }
    }
}

// ---------------------------------------------------------------------------
// Completion slots
// ---------------------------------------------------------------------------

enum SlotState {
    Pending,
    /// Boxed: a decoded frame is an order of magnitude larger than the
    /// other variants, and every completion crosses a thread anyway.
    Done(Box<Result<DecodedFrame, TransportError>>),
    /// The caller gave up (backstop timeout); a late completion is dropped.
    Abandoned,
}

/// One submitted call's rendezvous: the event loop completes it, the caller
/// thread parks on the condvar until then.
struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

fn relock<'a, T>(
    result: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Slot {
    fn new() -> Self {
        Self {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
        }
    }

    /// Resolves the slot (first completion wins; later ones are dropped).
    fn complete(&self, result: Result<DecodedFrame, TransportError>) {
        let mut state = relock(self.state.lock());
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Done(Box::new(result));
            self.cv.notify_all();
        }
    }

    /// Parks until completion or `backstop`; `None` means the event loop
    /// never answered (it enforces the real deadline, so this only fires
    /// if the loop itself is wedged or gone).
    fn wait(&self, backstop: Instant) -> Option<Result<DecodedFrame, TransportError>> {
        let mut state = relock(self.state.lock());
        loop {
            match &*state {
                SlotState::Done(_) => {
                    let done = std::mem::replace(&mut *state, SlotState::Abandoned);
                    match done {
                        SlotState::Done(result) => return Some(*result),
                        _ => return None,
                    }
                }
                SlotState::Pending => {
                    let now = Instant::now();
                    if now >= backstop {
                        *state = SlotState::Abandoned;
                        return None;
                    }
                    let (guard, _) = relock2(self.cv.wait_timeout(state, backstop - now));
                    state = guard;
                }
                SlotState::Abandoned => return None,
            }
        }
    }
}

/// What [`Condvar::wait_timeout`] hands back: the re-acquired guard plus the
/// timeout flag, either cleanly or through the poison wrapper.
type TimedWait<'a, T> = (MutexGuard<'a, T>, std::sync::WaitTimeoutResult);

fn relock2<'a, T>(
    result: Result<TimedWait<'a, T>, std::sync::PoisonError<TimedWait<'a, T>>>,
) -> TimedWait<'a, T> {
    match result {
        Ok(pair) => pair,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------------------
// Command queue
// ---------------------------------------------------------------------------

/// One submitted call, as the event loop tracks it.
struct CallJob {
    source_idx: usize,
    corr_id: u64,
    /// Full wire frame, length prefix included.
    frame: Vec<u8>,
    deadline: Instant,
    submitted: Instant,
    slot: Arc<Slot>,
}

enum Command {
    Call(CallJob),
    Connected {
        source_idx: usize,
        conn_idx: usize,
        result: std::io::Result<TcpStream>,
    },
}

#[derive(Default)]
struct QueueState {
    commands: Vec<Command>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    waker: Waker,
}

impl Shared {
    /// Enqueues and wakes the loop; returns `false` after shutdown.
    fn submit(&self, command: Command) -> bool {
        {
            let mut queue = relock(self.queue.lock());
            if queue.shutdown {
                return false;
            }
            queue.commands.push(command);
        }
        let _ = self.waker.wake();
        true
    }
}

// ---------------------------------------------------------------------------
// The transport handle
// ---------------------------------------------------------------------------

/// Pooled, pipelined TCP implementation of
/// [`SourceTransport`] — see the module docs for the
/// architecture and failure policy.
pub struct PooledTcpTransport {
    shared: Arc<Shared>,
    endpoints: BTreeMap<SourceId, String>,
    index: HashMap<SourceId, usize>,
    config: PoolConfig,
    next_corr: AtomicU64,
    metrics: PoolMetrics,
    registry: Arc<MetricsRegistry>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for PooledTcpTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PooledTcpTransport")
            .field("endpoints", &self.endpoints)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl PooledTcpTransport {
    /// A pooled transport over `(source id, "host:port")` endpoints with
    /// default tuning.
    pub fn new(endpoints: impl IntoIterator<Item = (SourceId, String)>) -> std::io::Result<Self> {
        Self::with_config(endpoints, PoolConfig::default())
    }

    /// A pooled transport with explicit tuning.
    pub fn with_config(
        endpoints: impl IntoIterator<Item = (SourceId, String)>,
        config: PoolConfig,
    ) -> std::io::Result<Self> {
        Self::with_registry(endpoints, config, Arc::new(MetricsRegistry::new()))
    }

    /// A pooled transport recording its pool gauges into `registry`.
    pub fn with_registry(
        endpoints: impl IntoIterator<Item = (SourceId, String)>,
        mut config: PoolConfig,
        registry: Arc<MetricsRegistry>,
    ) -> std::io::Result<Self> {
        config.connections_per_source = config.connections_per_source.max(1);
        config.max_in_flight_per_source = config.max_in_flight_per_source.max(1);
        let endpoints: BTreeMap<SourceId, String> = endpoints.into_iter().collect();
        let index: HashMap<SourceId, usize> = endpoints
            .keys()
            .enumerate()
            .map(|(idx, id)| (*id, idx))
            .collect();

        let poll = Poll::new()?;
        let waker = Waker::new(poll.registry(), WAKER_TOKEN)?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            waker,
        });
        let metrics = PoolMetrics::new(&registry);

        let sources: Vec<SourcePool> = endpoints
            .iter()
            .map(|(id, addr)| SourcePool::new(*id, addr.clone(), config.connections_per_source))
            .collect();
        let handle = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            let metrics = metrics.clone();
            std::thread::Builder::new()
                .name("net-pool".into())
                .spawn(move || {
                    EventLoop {
                        poll,
                        shared,
                        sources,
                        config,
                        metrics,
                    }
                    .run()
                })?
        };

        Ok(Self {
            shared,
            endpoints,
            index,
            config,
            next_corr: AtomicU64::new(1),
            metrics,
            registry,
            handle: Some(handle),
        })
    }

    /// The registered endpoints.
    pub fn endpoints(&self) -> &BTreeMap<SourceId, String> {
        &self.endpoints
    }

    /// The pool's observability handles.
    pub fn metrics(&self) -> &PoolMetrics {
        &self.metrics
    }

    /// The registry the pool gauges live in (for scraping alongside other
    /// center-side instruments).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// One submission: encode, enqueue, park until the loop answers.
    fn call_once(
        &self,
        source: SourceId,
        request: &Message,
        opts: CallOptions,
    ) -> Result<TransportReply, TransportError> {
        let source_idx = *self
            .index
            .get(&source)
            .ok_or(TransportError::UnknownSource(source))?;
        let corr_id = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let mut frame = Vec::new();
        let request_bytes = write_frame(
            &mut frame,
            &ServedReply::plain(request.clone())
                .traced(opts.trace)
                .correlated(Some(corr_id)),
            opts.want_stats,
        )
        .map_err(|e| TransportError::Io(format!("encode for source {source}: {e}")))?;

        let submitted = Instant::now();
        let deadline = submitted + self.config.request_timeout;
        let slot = Arc::new(Slot::new());
        let job = CallJob {
            source_idx,
            corr_id,
            frame,
            deadline,
            submitted,
            slot: Arc::clone(&slot),
        };
        if !self.shared.submit(Command::Call(job)) {
            return Err(TransportError::Io(format!(
                "pooled transport shut down (source {source})"
            )));
        }
        // The loop enforces `deadline`; the extra second is a backstop in
        // case the loop thread itself is gone.
        match slot.wait(deadline + Duration::from_secs(1)) {
            Some(Ok(frame)) => Ok(TransportReply {
                message: frame.message,
                request_bytes,
                reply_bytes: frame.message_bytes,
                search: frame.search,
                maintenance: frame.maintenance,
                service: frame.service,
                trace: frame.trace,
            }),
            Some(Err(e)) => Err(e),
            None => Err(TransportError::Timeout {
                source,
                waited: submitted.elapsed(),
            }),
        }
    }
}

impl SourceTransport for PooledTcpTransport {
    fn source_ids(&self) -> Vec<SourceId> {
        self.endpoints.keys().copied().collect()
    }

    fn call_with(
        &self,
        source: SourceId,
        request: &Message,
        opts: CallOptions,
    ) -> Result<TransportReply, TransportError> {
        let max_attempts = self.config.retries.saturating_add(1);
        let mut backoff = self.config.retry_backoff;
        let mut attempt = 1u32;
        loop {
            match self.call_once(source, request, opts) {
                Ok(reply) => return Ok(reply),
                // Only socket-level failures are safely retryable: a
                // timeout may still be executing remotely, and a remote
                // rejection is an answer, not a delivery failure.
                Err(TransportError::Io(_)) if attempt < max_attempts => {
                    self.metrics.retries.inc();
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                    attempt += 1;
                }
                Err(e @ TransportError::Io(_)) if attempt > 1 => {
                    return Err(TransportError::RetriesExhausted {
                        attempts: attempt,
                        last: Box::new(e),
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for PooledTcpTransport {
    fn drop(&mut self) {
        {
            let mut queue = relock(self.shared.queue.lock());
            queue.shutdown = true;
        }
        let _ = self.shared.waker.wake();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------------

const WAKER_TOKEN: Token = Token(0);
/// Socket read chunk; frames larger than this arrive across iterations.
const READ_CHUNK: usize = 64 * 1024;
/// Poll tick when nothing has a nearer deadline.
const IDLE_TICK: Duration = Duration::from_millis(500);

enum ConnState {
    /// No socket and no connect in progress.
    Idle,
    /// A connector thread is establishing the socket.
    Connecting,
    /// Registered with the poller and carrying traffic.
    Ready(TcpStream),
}

struct Conn {
    state: ConnState,
    token: Token,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    /// Registered interest, to skip redundant `reregister` syscalls.
    registered: Option<Interest>,
    /// Correlation id → job, for every frame sent on this connection and
    /// not yet answered.
    in_flight: HashMap<u64, CallJob>,
}

impl Conn {
    fn new(token: Token) -> Self {
        Self {
            state: ConnState::Idle,
            token,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            registered: None,
            in_flight: HashMap::new(),
        }
    }
}

struct SourcePool {
    id: SourceId,
    addr: String,
    conns: Vec<Conn>,
    /// Admitted but not yet dispatched calls (no ready connection or the
    /// in-flight cap is reached).
    pending: VecDeque<CallJob>,
}

impl SourcePool {
    fn new(id: SourceId, addr: String, conns_per_source: usize) -> Self {
        Self {
            id,
            addr,
            conns: Vec::with_capacity(conns_per_source),
            pending: VecDeque::new(),
        }
    }

    fn in_flight(&self) -> usize {
        self.conns.iter().map(|c| c.in_flight.len()).sum()
    }
}

struct EventLoop {
    poll: Poll,
    shared: Arc<Shared>,
    sources: Vec<SourcePool>,
    config: PoolConfig,
    metrics: PoolMetrics,
}

impl EventLoop {
    fn run(mut self) {
        let cps = self.config.connections_per_source;
        for (source_idx, source) in self.sources.iter_mut().enumerate() {
            for conn_idx in 0..cps {
                source
                    .conns
                    .push(Conn::new(Token(1 + source_idx * cps + conn_idx)));
            }
        }
        let mut events = Events::with_capacity(256);
        loop {
            let timeout = self.next_tick();
            if self.poll.poll(&mut events, Some(timeout)).is_err() {
                // An unusable poller cannot make progress; fail everything
                // rather than spin.
                self.shutdown("event loop poller failed");
                return;
            }
            let fired: Vec<mio::Event> = events.iter().collect();
            let mut woken = false;
            for event in &fired {
                if event.token() == WAKER_TOKEN {
                    woken = true;
                }
            }
            if woken {
                self.shared.waker.drain();
            }
            let (commands, shutdown) = {
                let mut queue = relock(self.shared.queue.lock());
                (std::mem::take(&mut queue.commands), queue.shutdown)
            };
            if shutdown {
                for command in commands {
                    if let Command::Call(job) = command {
                        job.slot.complete(Err(TransportError::Io(
                            "pooled transport shut down".to_string(),
                        )));
                    }
                }
                self.shutdown("pooled transport shut down");
                return;
            }
            for command in commands {
                match command {
                    Command::Call(job) => self.admit(job),
                    Command::Connected {
                        source_idx,
                        conn_idx,
                        result,
                    } => self.finish_connect(source_idx, conn_idx, result),
                }
            }
            for event in &fired {
                if event.token() != WAKER_TOKEN {
                    self.handle_io(event);
                }
            }
            self.expire_deadlines();
            for source_idx in 0..self.sources.len() {
                self.dispatch(source_idx);
            }
            self.publish_gauges();
        }
    }

    /// Poll timeout: the nearest outstanding deadline, clamped to the idle
    /// tick.
    fn next_tick(&self) -> Duration {
        let now = Instant::now();
        let mut tick = IDLE_TICK;
        for source in &self.sources {
            for job in source
                .pending
                .iter()
                .chain(source.conns.iter().flat_map(|c| c.in_flight.values()))
            {
                tick = tick.min(job.deadline.saturating_duration_since(now));
            }
        }
        tick.max(Duration::from_millis(1))
    }

    /// Admission control: a source carries at most `cap` calls in flight
    /// plus `cap` queued; anything beyond sheds immediately.
    fn admit(&mut self, job: CallJob) {
        let source = &mut self.sources[job.source_idx];
        let cap = self.config.max_in_flight_per_source;
        if source.in_flight() + source.pending.len() >= cap * 2 {
            self.metrics.backpressure.inc();
            job.slot.complete(Err(TransportError::Backpressure {
                source: source.id,
                in_flight_cap: cap,
            }));
            return;
        }
        source.pending.push_back(job);
    }

    /// Moves pending calls onto ready connections, least-loaded first,
    /// until the in-flight cap is reached; initiates connects when the
    /// pool has pending work but no (or too few) ready connections.
    fn dispatch(&mut self, source_idx: usize) {
        let cap = self.config.max_in_flight_per_source;
        loop {
            let source = &mut self.sources[source_idx];
            if source.pending.is_empty() || source.in_flight() >= cap {
                break;
            }
            let target = source
                .conns
                .iter()
                .enumerate()
                .filter(|(_, c)| matches!(c.state, ConnState::Ready(_)))
                .min_by_key(|(_, c)| c.in_flight.len())
                .map(|(idx, _)| idx);
            let Some(conn_idx) = target else {
                break;
            };
            let Some(job) = source.pending.pop_front() else {
                break;
            };
            let conn = &mut source.conns[conn_idx];
            conn.write_buf.extend_from_slice(&job.frame);
            conn.in_flight.insert(job.corr_id, job);
            self.reconcile_interest(source_idx, conn_idx);
        }
        // Connect escalation: one connector per idle slot while pending
        // work exists, so a cold pool warms up in parallel.
        let source = &mut self.sources[source_idx];
        if !source.pending.is_empty() {
            let addr = source.addr.clone();
            let timeout = self.config.connect_timeout;
            for conn_idx in 0..source.conns.len() {
                if matches!(source.conns[conn_idx].state, ConnState::Idle) {
                    source.conns[conn_idx].state = ConnState::Connecting;
                    spawn_connector(&self.shared, source_idx, conn_idx, addr.clone(), timeout);
                }
            }
        }
    }

    fn finish_connect(
        &mut self,
        source_idx: usize,
        conn_idx: usize,
        result: std::io::Result<TcpStream>,
    ) {
        match result {
            Ok(stream) => {
                let token = self.sources[source_idx].conns[conn_idx].token;
                let registered = stream
                    .set_nonblocking(true)
                    .and_then(|()| stream.set_nodelay(true))
                    .and_then(|()| {
                        self.poll
                            .registry()
                            .register(&stream, token, Interest::READABLE)
                    });
                let conn = &mut self.sources[source_idx].conns[conn_idx];
                match registered {
                    Ok(()) => {
                        conn.state = ConnState::Ready(stream);
                        conn.registered = Some(Interest::READABLE);
                        self.dispatch(source_idx);
                    }
                    Err(_) => {
                        conn.state = ConnState::Idle;
                        self.fail_if_unreachable(source_idx, "could not register connection");
                    }
                }
            }
            Err(e) => {
                self.sources[source_idx].conns[conn_idx].state = ConnState::Idle;
                self.fail_if_unreachable(source_idx, &e.to_string());
            }
        }
    }

    /// When a connect fails and nothing else is ready or in progress, the
    /// source is unreachable *now* — fail the queued calls instead of
    /// letting them ripen into timeouts.
    fn fail_if_unreachable(&mut self, source_idx: usize, detail: &str) {
        let source = &mut self.sources[source_idx];
        let reachable = source
            .conns
            .iter()
            .any(|c| !matches!(c.state, ConnState::Idle));
        if reachable {
            return;
        }
        let id = source.id;
        let addr = source.addr.clone();
        for job in source.pending.drain(..) {
            job.slot.complete(Err(TransportError::Io(format!(
                "connect {addr} (source {id}): {detail}"
            ))));
        }
    }

    fn handle_io(&mut self, event: &mio::Event) {
        let cps = self.config.connections_per_source;
        let raw = event.token().0;
        if raw == 0 {
            return;
        }
        let source_idx = (raw - 1) / cps;
        let conn_idx = (raw - 1) % cps;
        if source_idx >= self.sources.len() {
            return;
        }
        if event.is_error() {
            self.fail_conn(source_idx, conn_idx, "socket error");
            return;
        }
        if event.is_writable() && self.flush_writes(source_idx, conn_idx).is_err() {
            return;
        }
        if event.is_readable() {
            self.drain_reads(source_idx, conn_idx);
        }
    }

    /// Writes as much buffered frame data as the socket accepts; `Err`
    /// means the connection died (and was failed).
    fn flush_writes(&mut self, source_idx: usize, conn_idx: usize) -> Result<(), ()> {
        loop {
            let conn = &mut self.sources[source_idx].conns[conn_idx];
            let ConnState::Ready(stream) = &mut conn.state else {
                return Ok(());
            };
            if conn.written >= conn.write_buf.len() {
                conn.write_buf.clear();
                conn.written = 0;
                self.reconcile_interest(source_idx, conn_idx);
                return Ok(());
            }
            match stream.write(&conn.write_buf[conn.written..]) {
                Ok(0) => {
                    self.fail_conn(source_idx, conn_idx, "write returned 0");
                    return Err(());
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.fail_conn(source_idx, conn_idx, &format!("write: {e}"));
                    return Err(());
                }
            }
        }
    }

    /// Reads everything available and completes any whole reply frames.
    fn drain_reads(&mut self, source_idx: usize, conn_idx: usize) {
        let mut chunk = vec![0u8; READ_CHUNK];
        loop {
            let conn = &mut self.sources[source_idx].conns[conn_idx];
            let ConnState::Ready(stream) = &mut conn.state else {
                return;
            };
            match stream.read(&mut chunk) {
                Ok(0) => {
                    self.fail_conn(source_idx, conn_idx, "connection closed by source");
                    return;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    if !self.parse_frames(source_idx, conn_idx) {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.fail_conn(source_idx, conn_idx, &format!("read: {e}"));
                    return;
                }
            }
        }
    }

    /// Decodes every complete frame in the read buffer; `false` means the
    /// connection was failed (garbage on the wire).
    fn parse_frames(&mut self, source_idx: usize, conn_idx: usize) -> bool {
        loop {
            let conn = &mut self.sources[source_idx].conns[conn_idx];
            let buf = &conn.read_buf;
            if buf.len() < 4 {
                return true;
            }
            let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if len == 0 || len > MAX_FRAME_BYTES {
                self.fail_conn(source_idx, conn_idx, "corrupt frame length");
                return false;
            }
            if buf.len() < 4 + len {
                return true;
            }
            let frame = read_frame(&mut &buf[..4 + len]);
            let conn = &mut self.sources[source_idx].conns[conn_idx];
            conn.read_buf.drain(..4 + len);
            match frame {
                Ok(frame) => {
                    let matched = frame
                        .correlation_id
                        .and_then(|corr| conn.in_flight.remove(&corr));
                    // Unmatched replies belong to timed-out (already
                    // completed) calls; dropping them keeps the stream in
                    // sync because correlation, not order, pairs frames.
                    if let Some(job) = matched {
                        job.slot.complete(Ok(frame));
                    }
                }
                Err(FrameError::Wire(e)) => {
                    self.fail_conn(source_idx, conn_idx, &format!("reply decode: {e}"));
                    return false;
                }
                Err(FrameError::Io(e)) => {
                    self.fail_conn(source_idx, conn_idx, &format!("reply framing: {e}"));
                    return false;
                }
            }
        }
    }

    /// Tears one connection down, failing every call in flight on it with
    /// a retryable I/O error.
    fn fail_conn(&mut self, source_idx: usize, conn_idx: usize, detail: &str) {
        let source = &mut self.sources[source_idx];
        let id = source.id;
        let addr = source.addr.clone();
        let conn = &mut source.conns[conn_idx];
        if let ConnState::Ready(stream) = &conn.state {
            let _ = self.poll.registry().deregister(stream);
        }
        conn.state = ConnState::Idle;
        conn.registered = None;
        conn.read_buf.clear();
        conn.write_buf.clear();
        conn.written = 0;
        for (_, job) in conn.in_flight.drain() {
            job.slot.complete(Err(TransportError::Io(format!(
                "exchange with {addr} (source {id}): {detail}"
            ))));
        }
    }

    /// Keeps the registered interest in sync with whether the connection
    /// has unflushed writes.
    fn reconcile_interest(&mut self, source_idx: usize, conn_idx: usize) {
        let conn = &mut self.sources[source_idx].conns[conn_idx];
        let ConnState::Ready(stream) = &conn.state else {
            return;
        };
        let wanted = if conn.written < conn.write_buf.len() {
            Interest::READABLE | Interest::WRITABLE
        } else {
            Interest::READABLE
        };
        if conn.registered != Some(wanted)
            && self
                .poll
                .registry()
                .reregister(stream, conn.token, wanted)
                .is_ok()
        {
            conn.registered = Some(wanted);
        }
        // Level-triggered: data queued while the socket is already
        // writable must be pushed now, not on the next readiness edge.
        if wanted.is_writable() {
            let _ = self.flush_writes(source_idx, conn_idx);
        }
    }

    /// Completes every call whose deadline has passed with a typed
    /// timeout.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        for source in &mut self.sources {
            let id = source.id;
            let mut expired: Vec<CallJob> = Vec::new();
            for conn in &mut source.conns {
                let overdue: Vec<u64> = conn
                    .in_flight
                    .iter()
                    .filter(|(_, job)| job.deadline <= now)
                    .map(|(corr, _)| *corr)
                    .collect();
                for corr in overdue {
                    if let Some(job) = conn.in_flight.remove(&corr) {
                        expired.push(job);
                    }
                }
            }
            while let Some(pos) = source.pending.iter().position(|job| job.deadline <= now) {
                if let Some(job) = source.pending.remove(pos) {
                    expired.push(job);
                }
            }
            for job in expired {
                self.metrics.timeouts.inc();
                job.slot.complete(Err(TransportError::Timeout {
                    source: id,
                    waited: now.saturating_duration_since(job.submitted),
                }));
            }
        }
    }

    fn publish_gauges(&self) {
        let open = self
            .sources
            .iter()
            .flat_map(|s| s.conns.iter())
            .filter(|c| matches!(c.state, ConnState::Ready(_)))
            .count();
        let in_flight: usize = self.sources.iter().map(|s| s.in_flight()).sum();
        self.metrics.open_connections.set(open as f64);
        self.metrics.in_flight.set(in_flight as f64);
    }

    /// Fails every outstanding call and drops every connection.
    fn shutdown(&mut self, detail: &str) {
        for source in &mut self.sources {
            for job in source.pending.drain(..) {
                job.slot
                    .complete(Err(TransportError::Io(detail.to_string())));
            }
            for conn in &mut source.conns {
                for (_, job) in conn.in_flight.drain() {
                    job.slot
                        .complete(Err(TransportError::Io(detail.to_string())));
                }
                conn.state = ConnState::Idle;
            }
        }
        self.publish_gauges();
    }
}

/// Establishes one connection off the event loop thread (std's connect is
/// blocking) and posts the outcome back through the command queue.
fn spawn_connector(
    shared: &Arc<Shared>,
    source_idx: usize,
    conn_idx: usize,
    addr: String,
    timeout: Duration,
) {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        let result = connect_with_timeout(&addr, timeout);
        shared.submit(Command::Connected {
            source_idx,
            conn_idx,
            result,
        });
    });
}

fn connect_with_timeout(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let mut last = None;
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::AddrNotAvailable,
            format!("{addr} resolved to no addresses"),
        )
    }))
}
