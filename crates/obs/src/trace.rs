//! Structured traces: named, timed spans correlated by a trace id.
//!
//! A [`Trace`] is deliberately a *flat list* rather than a tree — the query
//! engine's phases (plan, per-shard calls, source-side traversal/verify,
//! aggregate) are one level deep, and a flat list keeps cross-transport
//! comparison trivial: after [`Trace::canonicalize`], two runs of the same
//! request have the same span *structure* (names and sources) even though
//! the measured durations differ.
//!
//! Trace ids come from a process-global monotonic counter
//! ([`next_trace_id`]) — never from wall-clock time or randomness — so runs
//! are reproducible and ids are unique within a center process, which is
//! the scope that assigns them.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// A fresh process-unique trace id (monotonic, starting at 1; 0 is reserved
/// as "no trace" on the wire).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// One timed phase of a traced request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase name, e.g. `plan`, `call`, `source_traversal`, `aggregate`.
    pub name: String,
    /// The data source this span was measured on/for, if any; `None` for
    /// center-side phases.
    pub source: Option<u16>,
    /// Measured duration.
    pub elapsed: Duration,
}

/// A trace: an id plus the spans recorded under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The center-assigned trace id (also propagated to sources on the
    /// transport frame header).
    pub id: u64,
    /// Recorded spans. Call [`Trace::canonicalize`] for a deterministic
    /// order.
    pub spans: Vec<Span>,
}

impl Trace {
    /// An empty trace with the given id.
    pub fn new(id: u64) -> Self {
        Trace {
            id,
            spans: Vec::new(),
        }
    }

    /// Records a span.
    pub fn push(&mut self, name: impl Into<String>, source: Option<u16>, elapsed: Duration) {
        self.spans.push(Span {
            name: name.into(),
            source,
            elapsed,
        });
    }

    /// Sorts spans by `(source, name)` — center-side spans (`source: None`)
    /// first — so span structure is identical across transports and worker
    /// counts regardless of completion order.
    pub fn canonicalize(&mut self) {
        self.spans
            .sort_by(|a, b| (a.source, &a.name).cmp(&(b.source, &b.name)));
    }

    /// The first span with the given name, if any.
    pub fn span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// All spans with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> + 'a {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Sum of the durations of all spans with the given name.
    pub fn total_named(&self, name: &str) -> Duration {
        self.spans_named(name).map(|s| s.elapsed).sum()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace {}", self.id)?;
        for span in &self.spans {
            match span.source {
                Some(s) => writeln!(f, "  {:<20} source={s:<4} {:?}", span.name, span.elapsed)?,
                None => writeln!(f, "  {:<20} center      {:?}", span.name, span.elapsed)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn canonicalize_orders_center_spans_first_then_by_source_and_name() {
        let mut t = Trace::new(9);
        t.push("verify", Some(2), Duration::from_nanos(5));
        t.push("plan", None, Duration::from_nanos(1));
        t.push("call", Some(1), Duration::from_nanos(3));
        t.push("aggregate", None, Duration::from_nanos(2));
        t.canonicalize();
        let shape: Vec<(Option<u16>, &str)> = t
            .spans
            .iter()
            .map(|s| (s.source, s.name.as_str()))
            .collect();
        assert_eq!(
            shape,
            vec![
                (None, "aggregate"),
                (None, "plan"),
                (Some(1), "call"),
                (Some(2), "verify"),
            ]
        );
    }

    #[test]
    fn lookup_helpers_find_spans() {
        let mut t = Trace::new(1);
        t.push("call", Some(1), Duration::from_nanos(3));
        t.push("call", Some(2), Duration::from_nanos(4));
        assert_eq!(t.span("call").unwrap().source, Some(1));
        assert_eq!(t.spans_named("call").count(), 2);
        assert_eq!(t.total_named("call"), Duration::from_nanos(7));
        assert!(t.span("missing").is_none());
    }

    #[test]
    fn display_renders_one_line_per_span() {
        let mut t = Trace::new(3);
        t.push("plan", None, Duration::from_micros(2));
        t.push("call", Some(0), Duration::from_micros(5));
        let text = format!("{t}");
        assert!(text.starts_with("trace 3\n"));
        assert_eq!(text.lines().count(), 3);
    }
}
