//! Exporters for [`MetricsSnapshot`]: Prometheus text exposition and
//! hand-rolled JSON, plus a Prometheus mini-parser for validating scrapes.
//!
//! Both writers are dependency-free by design (this workspace builds
//! offline) and deterministic: samples render in the snapshot's
//! `(name, labels)` order, so two identical snapshots produce identical
//! bytes.

use crate::metrics::{bucket_upper_bound, MetricSample, MetricValue, MetricsSnapshot};
use std::fmt::Write as _;

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Counters and gauges render as single samples; a histogram renders as the
/// conventional triplet — cumulative `_bucket{le="..."}` series (upper
/// bounds are the log₂ bucket bounds), `_sum`, and `_count`. A `# TYPE`
/// comment precedes each distinct metric name.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for sample in &snapshot.samples {
        if last_name != Some(sample.name.as_str()) {
            let kind = match sample.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {kind}", sample.name);
            last_name = Some(sample.name.as_str());
        }
        match &sample.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {v}",
                    sample.name,
                    label_block(&sample.labels, &[])
                );
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {v}",
                    sample.name,
                    label_block(&sample.labels, &[])
                );
            }
            MetricValue::Histogram {
                count,
                sum,
                buckets,
            } => {
                let mut cumulative = 0u64;
                for &(idx, n) in buckets {
                    cumulative += n;
                    let le = bucket_upper_bound(idx as usize);
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        sample.name,
                        label_block(&sample.labels, &[("le", &le.to_string())])
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {count}",
                    sample.name,
                    label_block(&sample.labels, &[("le", "+Inf")])
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {sum}",
                    sample.name,
                    label_block(&sample.labels, &[])
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {count}",
                    sample.name,
                    label_block(&sample.labels, &[])
                );
            }
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a snapshot as a single JSON object, in the same hand-rolled
/// style as `bench-runner`'s `BENCH_<date>.json` writer.
pub fn render_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"samples\":[");
    for (i, sample) in snapshot.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_sample_json(&mut out, sample);
    }
    out.push_str("]}");
    out
}

fn render_sample_json(out: &mut String, sample: &MetricSample) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"labels\":{{",
        escape_json(&sample.name)
    );
    for (i, (k, v)) in sample.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
    }
    out.push_str("},");
    match &sample.value {
        MetricValue::Counter(v) => {
            let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
        }
        MetricValue::Gauge(v) => {
            let rendered = if v.is_finite() {
                format!("{v}")
            } else {
                // JSON has no Inf/NaN literals; fail closed to null.
                "null".to_string()
            };
            let _ = write!(out, "\"type\":\"gauge\",\"value\":{rendered}");
        }
        MetricValue::Histogram {
            count,
            sum,
            buckets,
        } => {
            let _ = write!(
                out,
                "\"type\":\"histogram\",\"count\":{count},\"sum\":{sum},\"buckets\":["
            );
            for (i, (idx, n)) in buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{idx},{n}]");
            }
            out.push(']');
        }
    }
    out.push('}');
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One parsed Prometheus sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric (series) name, including any `_bucket`/`_sum`/`_count` suffix.
    pub name: String,
    /// Label key/value pairs in line order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A mini-parser for the Prometheus text exposition format — enough to
/// validate a scrape in CI: comments/blank lines are skipped, every other
/// line must be `name[{k="v",...}] value` with a parseable value
/// (`+Inf`/`-Inf`/`NaN` accepted).
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_sample_line(line: &str) -> Result<PromSample, String> {
    let (series, value_str) = match line.find('{') {
        Some(brace) => {
            let close = line[brace..].find('}').ok_or("unclosed label block")? + brace;
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let space = line.find(' ').ok_or("missing value")?;
            (&line[..space], line[space + 1..].trim())
        }
    };
    let (name, labels) = match series.find('{') {
        Some(brace) => (
            &series[..brace],
            parse_labels(&series[brace + 1..series.len() - 1])?,
        ),
        None => (series, Vec::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse::<f64>().map_err(|_| format!("bad value {v:?}"))?,
    };
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = block.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim();
        if key.is_empty() {
            return Err("empty label name".to_string());
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err("label value must be quoted".to_string());
        }
        // Scan for the closing quote, honouring backslash escapes.
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return Err("dangling escape".to_string()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((key.to_string(), value));
        rest = after[1 + end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err("expected ',' between labels".to_string());
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("requests_total", &[("kind", "ojsp")]).add(5);
        reg.counter("requests_total", &[("kind", "cjsp")]).add(2);
        reg.gauge("datasets", &[]).set(42.0);
        let h = reg.histogram("service_ns", &[]);
        h.observe(3);
        h.observe(900);
        reg
    }

    #[test]
    fn prometheus_rendering_roundtrips_through_the_parser() {
        let snap = sample_registry().snapshot();
        let text = render_prometheus(&snap);
        let parsed = parse_prometheus(&text).expect("own output parses");
        // 2 counters + 1 gauge + (2 buckets + Inf + sum + count) = 8 lines.
        assert_eq!(parsed.len(), 8);
        let ojsp = parsed
            .iter()
            .find(|s| {
                s.name == "requests_total"
                    && s.labels == vec![("kind".to_string(), "ojsp".to_string())]
            })
            .expect("ojsp counter present");
        assert_eq!(ojsp.value, 5.0);
        let inf_bucket = parsed
            .iter()
            .find(|s| s.name == "service_ns_bucket" && s.labels.iter().any(|(_, v)| v == "+Inf"))
            .expect("+Inf bucket present");
        assert_eq!(inf_bucket.value, 2.0);
        assert!(text.contains("# TYPE service_ns histogram"));
    }

    #[test]
    fn histogram_buckets_render_cumulatively() {
        let snap = sample_registry().snapshot();
        let parsed = parse_prometheus(&render_prometheus(&snap)).unwrap();
        let buckets: Vec<f64> = parsed
            .iter()
            .filter(|s| s.name == "service_ns_bucket")
            .map(|s| s.value)
            .collect();
        // 3 lands in le="3", 900 in le="1023"; cumulative 1, 2, and +Inf 2.
        assert_eq!(buckets, vec![1.0, 2.0, 2.0]);
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("odd\"name", &[("k", "line\nbreak")]).inc();
        let json = render_json(&reg.snapshot());
        assert!(json.starts_with("{\"samples\":["));
        assert!(json.contains("odd\\\"name"));
        assert!(json.contains("line\\nbreak"));
        assert_eq!(render_json(&reg.snapshot()), json);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("metric_without_value").is_err());
        assert!(parse_prometheus("bad name 1").is_err());
        assert!(parse_prometheus("m{unclosed=\"x\" 1").is_err());
        assert!(parse_prometheus("m{k=unquoted} 1").is_err());
        assert!(parse_prometheus("m nonnumeric").is_err());
        assert!(parse_prometheus("# just a comment\n").unwrap().is_empty());
    }

    #[test]
    fn parser_handles_escapes_and_inf() {
        let parsed = parse_prometheus("m{k=\"a\\\"b\\nc\"} +Inf").unwrap();
        assert_eq!(parsed[0].labels[0].1, "a\"b\nc");
        assert!(parsed[0].value.is_infinite());
    }
}
