//! Zero-dependency observability primitives for the joinable-search stack.
//!
//! Production query engines explain themselves through three channels, and
//! this crate provides all of them without pulling in a single external
//! dependency (the workspace builds offline):
//!
//! * [`MetricsRegistry`] — lock-cheap [`Counter`]s, [`Gauge`]s and
//!   log₂-bucketed [`Histogram`]s registered by name + labels. Handles are
//!   `Arc`-backed atomics: the hot path is one relaxed `fetch_add`, the
//!   registry mutex is touched only at registration and snapshot time.
//!   A [`MetricsSnapshot`] is a plain-data copy that can cross a process
//!   boundary (the `multisource` crate serialises it onto its wire protocol)
//!   and renders through two exporters: Prometheus text exposition
//!   ([`render_prometheus`]) and hand-rolled JSON ([`render_json`]), with a
//!   mini-parser ([`parse_prometheus`]) so CI can validate scrape output.
//! * [`Trace`] — a flat list of named, timed [`Span`]s correlated by a
//!   center-assigned trace id ([`next_trace_id`]; monotonic, never derived
//!   from wall-clock time or randomness). The `multisource` engine uses it
//!   to time plan/route, each per-shard transport call, the source-side
//!   traversal-vs-verification split, and aggregation.
//! * [`SlowQueryLog`] — a bounded ring of queries whose end-to-end latency
//!   exceeded a configurable threshold, each entry keeping the trace id so
//!   the offending trace can be pulled up.

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod slowlog;
pub mod trace;

pub use export::{parse_prometheus, render_json, render_prometheus, PromSample};
pub use metrics::{
    Counter, Gauge, Histogram, MetricSample, MetricValue, MetricsRegistry, MetricsSnapshot,
};
pub use slowlog::{SlowQuery, SlowQueryLog};
pub use trace::{next_trace_id, Span, Trace};
