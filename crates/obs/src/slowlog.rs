//! The slow-query log: a bounded ring of requests that exceeded a latency
//! threshold, each keeping its trace id so the full trace can be pulled up.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// Default ring capacity.
const DEFAULT_CAPACITY: usize = 128;

/// One slow-query record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Request kind, e.g. `ojsp`, `cjsp`, `knn`.
    pub kind: String,
    /// End-to-end latency of the offending request.
    pub elapsed: Duration,
    /// The request's trace id, when tracing was enabled for it.
    pub trace_id: Option<u64>,
}

/// A bounded log of queries slower than a configurable threshold.
///
/// Recording takes a mutex, but only for requests that actually crossed the
/// threshold — the fast path is a single `Duration` comparison.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold: Duration,
    capacity: usize,
    entries: Mutex<VecDeque<SlowQuery>>,
}

impl SlowQueryLog {
    /// A log keeping the most recent [`DEFAULT_CAPACITY`](self) slow queries.
    pub fn new(threshold: Duration) -> Self {
        Self::with_capacity(threshold, DEFAULT_CAPACITY)
    }

    /// A log with an explicit ring capacity (minimum 1).
    pub fn with_capacity(threshold: Duration, capacity: usize) -> Self {
        SlowQueryLog {
            threshold,
            capacity: capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Records the request if it crossed the threshold; returns whether it
    /// was recorded. The oldest entry is evicted once the ring is full.
    pub fn record(&self, kind: &str, elapsed: Duration, trace_id: Option<u64>) -> bool {
        if elapsed < self.threshold {
            return false;
        }
        let mut entries = self.entries.lock().expect("slow-query log poisoned");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(SlowQuery {
            kind: kind.to_string(),
            elapsed,
            trace_id,
        });
        true
    }

    /// A copy of the current entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.entries
            .lock()
            .expect("slow-query log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("slow-query log poisoned").len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries.
    pub fn clear(&self) {
        self.entries
            .lock()
            .expect("slow-query log poisoned")
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_queries_over_the_threshold_are_recorded() {
        let log = SlowQueryLog::new(Duration::from_millis(10));
        assert!(!log.record("ojsp", Duration::from_millis(9), None));
        assert!(log.record("ojsp", Duration::from_millis(10), Some(7)));
        assert!(log.record("cjsp", Duration::from_millis(50), None));
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, "ojsp");
        assert_eq!(entries[0].trace_id, Some(7));
    }

    #[test]
    fn the_ring_evicts_oldest_first() {
        let log = SlowQueryLog::with_capacity(Duration::ZERO, 2);
        log.record("a", Duration::from_millis(1), None);
        log.record("b", Duration::from_millis(2), None);
        log.record("c", Duration::from_millis(3), None);
        let kinds: Vec<String> = log.entries().into_iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["b", "c"]);
        log.clear();
        assert!(log.is_empty());
    }
}
