//! The metrics registry: named counters, gauges, and log₂ histograms.
//!
//! Handles returned by the registry are cheap clones of `Arc`ed atomics, so
//! recording is wait-free (`Ordering::Relaxed` — metrics tolerate torn
//! cross-metric views) and never touches the registry lock. Registration is
//! idempotent: asking for the same `(name, labels)` again returns a handle
//! to the same underlying metric, so call sites don't need to thread handles
//! around if they'd rather re-look them up.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ buckets per histogram. Bucket `0` holds the value `0`,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]`; values at or above
/// `2^62` clamp into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a single `f64` that can move in both directions, stored as bits
/// in an atomic word.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed histogram of `u64` observations (typically nanoseconds).
///
/// p50/p90/p99 are derivable from any snapshot via
/// [`MetricValue::histogram_quantile`]; the bucket layout trades ≤ 2×
/// quantile resolution for a fixed 64-word footprint and wait-free recording.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

/// The log₂ bucket index for `value` (see [`HISTOGRAM_BUCKETS`]).
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// The largest value bucket `index` can hold (inclusive).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// A registry of named metrics.
///
/// The mutex guards only the registration table; recording through the
/// returned handles never takes it.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], make: fn() -> Metric) -> Metric {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(entry) = inner
            .iter()
            .find(|e| e.name == name && label_eq(&e.labels, labels))
        {
            let fresh = make();
            assert!(
                std::mem::discriminant(&entry.metric) == std::mem::discriminant(&fresh),
                "metric {name} already registered as a {}",
                entry.metric.kind()
            );
            return entry.metric.clone();
        }
        let metric = make();
        inner.push(Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            metric: metric.clone(),
        });
        metric
    }

    /// Registers (or re-fetches) a counter.
    ///
    /// # Panics
    /// If `(name, labels)` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, labels, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or re-fetches) a gauge.
    ///
    /// # Panics
    /// If `(name, labels)` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, labels, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or re-fetches) a histogram.
    ///
    /// # Panics
    /// If `(name, labels)` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, labels, || Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// A point-in-time copy of every registered metric, sorted by
    /// `(name, labels)` so renderings and cross-process comparisons are
    /// deterministic regardless of registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut samples: Vec<MetricSample> = inner
            .iter()
            .map(|e| MetricSample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                value: match &e.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        let buckets =
                            h.0.buckets
                                .iter()
                                .enumerate()
                                .filter_map(|(i, b)| {
                                    let n = b.load(Ordering::Relaxed);
                                    (n > 0).then_some((i as u8, n))
                                })
                                .collect();
                        MetricValue::Histogram {
                            count: h.count(),
                            sum: h.sum(),
                            buckets,
                        }
                    }
                },
            })
            .collect();
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot { samples }
    }
}

fn label_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// A point-in-time copy of a registry — plain data, safe to serialise.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// All samples, sorted by `(name, labels)`.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Looks up a sample by exact name and label set.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        self.samples
            .iter()
            .find(|s| s.name == name && label_eq(&s.labels, labels))
    }
}

/// One metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name (Prometheus-style, e.g. `source_requests_total`).
    pub name: String,
    /// Label key/value pairs.
    pub labels: Vec<(String, String)>,
    /// The recorded value.
    pub value: MetricValue,
}

/// The value of one snapshotted metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone counter.
    Counter(u64),
    /// A free-moving gauge.
    Gauge(f64),
    /// A log₂ histogram: total count, total sum, and the non-zero
    /// `(bucket index, count)` pairs in ascending bucket order.
    Histogram {
        /// Total number of observations.
        count: u64,
        /// Sum of all observations.
        sum: u64,
        /// Non-zero buckets as `(index, count)`, ascending by index.
        buckets: Vec<(u8, u64)>,
    },
}

impl MetricValue {
    /// Approximate quantile (`0.0 ≤ q ≤ 1.0`) of a histogram value: the
    /// upper bound of the first bucket whose cumulative count reaches
    /// `q · count`. `None` for non-histograms or empty histograms.
    pub fn histogram_quantile(&self, q: f64) -> Option<u64> {
        let MetricValue::Histogram { count, buckets, .. } = self else {
            return None;
        };
        if *count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (*count as f64)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(idx, n) in buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_bound(idx as usize));
            }
        }
        Some(bucket_upper_bound(HISTOGRAM_BUCKETS - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2_with_clamping() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // Every value falls in a bucket whose bound covers it.
        for v in [0u64, 1, 2, 7, 100, 1 << 20, u64::MAX] {
            assert!(v <= bucket_upper_bound(bucket_index(v)));
        }
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total", &[("kind", "ojsp")]);
        let b = reg.counter("requests_total", &[("kind", "ojsp")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels are a different metric.
        let c = reg.counter("requests_total", &[("kind", "cjsp")]);
        assert_eq!(c.get(), 0);
        assert_eq!(reg.snapshot().samples.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x", &[]);
        let _ = reg.gauge("x", &[]);
    }

    #[test]
    fn snapshot_is_sorted_and_searchable() {
        let reg = MetricsRegistry::new();
        reg.gauge("zeta", &[]).set(1.5);
        reg.counter("alpha", &[("s", "1")]).add(7);
        let snap = reg.snapshot();
        assert_eq!(snap.samples[0].name, "alpha");
        assert_eq!(
            snap.find("alpha", &[("s", "1")]).map(|s| &s.value),
            Some(&MetricValue::Counter(7))
        );
        assert_eq!(
            snap.find("zeta", &[]).map(|s| &s.value),
            Some(&MetricValue::Gauge(1.5))
        );
        assert!(snap.find("alpha", &[]).is_none());
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_ns", &[]);
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let value = &snap.find("latency_ns", &[]).unwrap().value;
        let MetricValue::Histogram { count, sum, .. } = value else {
            panic!("histogram expected");
        };
        assert_eq!(*count, 6);
        assert_eq!(*sum, 101_106);
        // p50 falls in the bucket holding 3 (the 3rd of 6 observations).
        assert_eq!(value.histogram_quantile(0.5), Some(3));
        // p99 falls in the bucket holding 100_000 = [65536, 131071].
        assert_eq!(value.histogram_quantile(0.99), Some(131_071));
        assert_eq!(MetricValue::Counter(1).histogram_quantile(0.5), None);
    }
}
